//! The multilevel k-way driver.

use ceps_graph::{CsrGraph, NodeId, Subgraph};

use crate::coarsen::coarsen;
use crate::initial::region_growing;
use crate::quality;
use crate::refine::{project, refine};
use crate::{PartitionError, Result};

/// Configuration for [`partition_graph`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionConfig {
    /// Number of parts `p` (the paper's partition count in Table 5).
    pub k: usize,
    /// Balance tolerance: each part may hold up to `(1 + epsilon) · n / k`
    /// node weight. METIS's default imbalance is ~3%; we default to 10%,
    /// looser because Fast CePS cares about cut much more than balance.
    pub epsilon: f64,
    /// Coarsening stops once the graph is below `max(coarsest_factor · k, 32)`
    /// nodes.
    pub coarsest_factor: usize,
    /// Refinement passes per level.
    pub refine_passes: usize,
    /// Seed for the randomized matching order and seed placement.
    pub seed: u64,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            k: 2,
            epsilon: 0.1,
            coarsest_factor: 8,
            refine_passes: 4,
            seed: 0,
        }
    }
}

impl PartitionConfig {
    /// Convenience constructor for `k` parts with defaults otherwise.
    pub fn with_parts(k: usize) -> Self {
        PartitionConfig {
            k,
            ..Default::default()
        }
    }
}

/// A complete k-way assignment of graph nodes to parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    assignment: Vec<u32>,
    k: usize,
}

impl Partitioning {
    /// Wraps a raw assignment (every entry must be `< k`).
    pub fn from_assignment(assignment: Vec<u32>, k: usize) -> Self {
        debug_assert!(assignment.iter().all(|&p| (p as usize) < k));
        Partitioning { assignment, k }
    }

    /// Number of parts.
    pub fn part_count(&self) -> usize {
        self.k
    }

    /// Part of node `v`.
    pub fn part_of(&self, v: NodeId) -> u32 {
        self.assignment[v.index()]
    }

    /// The raw assignment vector.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// All members of part `p`.
    pub fn members(&self, p: u32) -> Vec<NodeId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &q)| q == p)
            .map(|(v, _)| NodeId::from_index(v))
            .collect()
    }

    /// Node counts per part.
    pub fn sizes(&self) -> Vec<usize> {
        quality::part_sizes(&self.assignment, self.k)
    }

    /// Union of the parts containing any of `nodes`, as a [`Subgraph`] —
    /// Step 1 of Fast CePS (Table 5): "pick up partitions of W that contain
    /// all the query nodes to construct the new weighted graph".
    pub fn covering_subgraph(&self, nodes: &[NodeId]) -> Subgraph {
        let mut wanted = vec![false; self.k];
        for &q in nodes {
            wanted[self.assignment[q.index()] as usize] = true;
        }
        Subgraph::from_nodes(
            self.assignment
                .iter()
                .enumerate()
                .filter(|&(_, &p)| wanted[p as usize])
                .map(|(v, _)| NodeId::from_index(v)),
        )
    }

    /// Edge cut of this partitioning on `graph`.
    pub fn edge_cut(&self, graph: &CsrGraph) -> f64 {
        quality::edge_cut(graph, &self.assignment)
    }

    /// Balance factor (1.0 = perfect).
    pub fn balance(&self) -> f64 {
        quality::balance(&self.assignment, self.k)
    }
}

/// Partitions `graph` into `config.k` parts by the multilevel scheme.
///
/// # Errors
/// [`PartitionError::BadPartCount`] unless `1 ≤ k ≤ node_count`;
/// [`PartitionError::BadEpsilon`] for a non-finite or negative tolerance.
pub fn partition_graph(graph: &CsrGraph, config: &PartitionConfig) -> Result<Partitioning> {
    let n = graph.node_count();
    if config.k == 0 || config.k > n {
        return Err(PartitionError::BadPartCount {
            k: config.k,
            node_count: n,
        });
    }
    if !(config.epsilon.is_finite() && config.epsilon >= 0.0) {
        return Err(PartitionError::BadEpsilon {
            epsilon: config.epsilon,
        });
    }
    if config.k == 1 {
        return Ok(Partitioning {
            assignment: vec![0; n],
            k: 1,
        });
    }

    let _span = ceps_obs::span("partition.kway");
    let target = (config.coarsest_factor * config.k).max(32);
    let hierarchy = coarsen(graph, target, config.seed);
    ceps_obs::debug!(
        "partition: coarsened {} nodes to {} across {} levels (k = {})",
        n,
        hierarchy.coarsest().graph.node_count(),
        hierarchy.levels.len(),
        config.k
    );

    // Initial partition on the coarsest graph.
    let coarsest = hierarchy.coarsest();
    let mut assignment = region_growing(
        &coarsest.graph,
        &coarsest.node_weight,
        config.k,
        config.epsilon,
        config.seed,
    );
    refine(
        &coarsest.graph,
        &coarsest.node_weight,
        &mut assignment,
        config.k,
        config.epsilon,
        config.refine_passes,
    );

    // Uncoarsen: project and refine level by level, finest last.
    for level in hierarchy.levels[..hierarchy.levels.len() - 1].iter().rev() {
        let map = level
            .to_coarser
            .as_ref()
            .expect("non-coarsest level has map");
        assignment = project(&assignment, map);
        refine(
            &level.graph,
            &level.node_weight,
            &mut assignment,
            config.k,
            config.epsilon,
            config.refine_passes,
        );
    }

    let result = Partitioning {
        assignment,
        k: config.k,
    };
    // Gated by hand: edge_cut is O(E), too costly to compute for a
    // discarded message.
    if ceps_obs::log_enabled(ceps_obs::Level::Debug) {
        ceps_obs::debug!(
            "partition: {} parts, edge cut {:.1}, balance {:.3}",
            config.k,
            result.edge_cut(graph),
            result.balance()
        );
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceps_graph::GraphBuilder;

    /// `c` cliques of `size` nodes each, ring-bridged by weak edges.
    fn clique_ring(c: u32, size: u32) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for k in 0..c {
            let base = k * size;
            for i in 0..size {
                for j in (i + 1)..size {
                    b.add_edge(NodeId(base + i), NodeId(base + j), 4.0).unwrap();
                }
            }
            let next = ((k + 1) % c) * size;
            b.add_edge(NodeId(base), NodeId(next + 1), 0.2).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn validates_config() {
        let g = clique_ring(2, 4);
        assert!(partition_graph(&g, &PartitionConfig::with_parts(0)).is_err());
        assert!(partition_graph(&g, &PartitionConfig::with_parts(100)).is_err());
        let bad = PartitionConfig {
            epsilon: f64::NAN,
            ..PartitionConfig::with_parts(2)
        };
        assert!(partition_graph(&g, &bad).is_err());
    }

    #[test]
    fn k1_is_trivial() {
        let g = clique_ring(2, 4);
        let p = partition_graph(&g, &PartitionConfig::with_parts(1)).unwrap();
        assert!(p.assignment().iter().all(|&x| x == 0));
        assert_eq!(p.edge_cut(&g), 0.0);
    }

    #[test]
    fn splits_cliques_with_small_cut() {
        let g = clique_ring(4, 8); // 32 nodes, 4 natural clusters
        let cfg = PartitionConfig {
            seed: 3,
            ..PartitionConfig::with_parts(4)
        };
        let p = partition_graph(&g, &cfg).unwrap();
        // Perfect answer cuts only the 4 bridges (0.8 total); allow slack but
        // demand far less than random (random 4-way cuts ~3/4 of 4*112+0.8).
        assert!(p.edge_cut(&g) < 20.0, "cut {}", p.edge_cut(&g));
        assert!(p.balance() < 1.6, "balance {}", p.balance());
    }

    #[test]
    fn covering_subgraph_includes_whole_parts() {
        let g = clique_ring(4, 8);
        let cfg = PartitionConfig {
            seed: 3,
            ..PartitionConfig::with_parts(4)
        };
        let p = partition_graph(&g, &cfg).unwrap();
        let q = NodeId(0);
        let cover = p.covering_subgraph(&[q]);
        let part = p.part_of(q);
        for v in g.nodes() {
            assert_eq!(cover.contains(v), p.part_of(v) == part);
        }
        // Multi-query cover = union.
        let q2 = NodeId(31);
        let cover2 = p.covering_subgraph(&[q, q2]);
        assert!(cover2.len() >= cover.len());
        assert!(cover2.contains(q2));
    }

    #[test]
    fn every_node_assigned_for_various_k() {
        let g = clique_ring(3, 7);
        for k in [2, 3, 5, 8] {
            let cfg = PartitionConfig {
                seed: 9,
                ..PartitionConfig::with_parts(k)
            };
            let p = partition_graph(&g, &cfg).unwrap();
            assert_eq!(p.assignment().len(), 21);
            assert!(p.assignment().iter().all(|&x| (x as usize) < k), "k = {k}");
            // No empty parts on this well-connected graph for reasonable k.
            if k <= 3 {
                assert!(
                    p.sizes().iter().all(|&s| s > 0),
                    "k = {k}, sizes {:?}",
                    p.sizes()
                );
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = clique_ring(3, 6);
        let cfg = PartitionConfig {
            seed: 11,
            ..PartitionConfig::with_parts(3)
        };
        let a = partition_graph(&g, &cfg).unwrap();
        let b = partition_graph(&g, &cfg).unwrap();
        assert_eq!(a, b);
    }
}
