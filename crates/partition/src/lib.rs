//! # ceps-partition
//!
//! A from-scratch **multilevel k-way graph partitioner** in the METIS
//! family, built because the paper's *Fast CePS* (Sec. 6, Table 5) uses
//! METIS to "pre-partition W into p pieces" offline; at query time only the
//! partitions containing query nodes are kept.
//!
//! The classic multilevel scheme (Karypis–Kumar) has three phases, each its
//! own module:
//!
//! 1. **Coarsening** ([`matching`], [`coarsen`]) — repeatedly contract a
//!    heavy-edge matching, so the strongest ties collapse first and the
//!    coarse graph preserves community structure;
//! 2. **Initial partitioning** ([`initial`]) — greedy region growing from
//!    spread-out seeds on the coarsest graph;
//! 3. **Uncoarsening + refinement** ([`refine`]) — project the partition
//!    back level by level, locally moving boundary nodes to reduce the edge
//!    cut while keeping parts balanced (a greedy Kernighan–Lin/FM-style
//!    pass).
//!
//! The driver is [`partition_graph`] / [`PartitionConfig`]; quality metrics
//! live in [`quality`].
//!
//! What Fast CePS needs from the partitioner — and therefore what the tests
//! pin down — is modest: a *complete* assignment (every node gets exactly one
//! of `k` parts), rough balance, and a small edge cut so that most of a query
//! node's random-walk mass stays inside its own part.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coarsen;
mod error;
pub mod initial;
pub mod kway;
pub mod matching;
pub mod quality;
pub mod refine;

pub use error::PartitionError;
pub use kway::{partition_graph, PartitionConfig, Partitioning};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, PartitionError>;
