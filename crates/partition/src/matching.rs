//! Heavy-edge matching — the coarsening heuristic of Karypis–Kumar.
//!
//! Visiting nodes in a seeded random order, each unmatched node pairs with
//! its heaviest-edged unmatched neighbor. Contracting such a matching halves
//! the node count (in the limit) while preferentially collapsing the
//! strongest ties — exactly the edges a good partition would not cut.

use ceps_graph::CsrGraph;
use rand::{seq::SliceRandom, SeedableRng};

/// A matching over graph nodes: `mate[v] = u` if `{v, u}` matched, or
/// `mate[v] = v` if `v` stayed single.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    /// Partner of each node (itself if unmatched).
    pub mate: Vec<u32>,
}

impl Matching {
    /// Number of matched pairs.
    pub fn pair_count(&self) -> usize {
        self.mate
            .iter()
            .enumerate()
            .filter(|&(v, &m)| (v as u32) < m)
            .count()
    }

    /// Checks the involution invariant `mate[mate[v]] == v`.
    pub fn is_valid(&self) -> bool {
        self.mate
            .iter()
            .enumerate()
            .all(|(v, &m)| (m as usize) < self.mate.len() && self.mate[m as usize] == v as u32)
    }
}

/// Computes a heavy-edge matching with a deterministic seeded visit order.
pub fn heavy_edge_matching(graph: &CsrGraph, seed: u64) -> Matching {
    let n = graph.node_count();
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);

    let mut mate: Vec<u32> = (0..n as u32).collect();
    let mut matched = vec![false; n];
    for &v in &order {
        if matched[v as usize] {
            continue;
        }
        let vid = ceps_graph::NodeId(v);
        let mut best: Option<(u32, f64)> = None;
        for (u, w) in graph.neighbors(vid) {
            if !matched[u.index()] && u.0 != v {
                match best {
                    Some((_, bw)) if bw >= w => {}
                    _ => best = Some((u.0, w)),
                }
            }
        }
        if let Some((u, _)) = best {
            matched[v as usize] = true;
            matched[u as usize] = true;
            mate[v as usize] = u;
            mate[u as usize] = v;
        }
    }
    Matching { mate }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceps_graph::{GraphBuilder, NodeId};

    fn weighted_path() -> CsrGraph {
        // 0 -1- 1 -9- 2 -1- 3: the heavy edge 1-2 should almost always match.
        let mut b = GraphBuilder::new();
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 9.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn matching_is_a_valid_involution() {
        let g = weighted_path();
        for seed in 0..20 {
            let m = heavy_edge_matching(&g, seed);
            assert!(m.is_valid(), "seed {seed}");
        }
    }

    #[test]
    fn prefers_heavy_edges() {
        // Square 0-1-3-2-0 where every node's heaviest neighbor lies on
        // edge 0-1 (weight 9) or 2-3 (weight 5): whatever the visit order,
        // the matching must be exactly {0-1, 2-3}.
        let mut b = GraphBuilder::new();
        b.add_edge(NodeId(0), NodeId(1), 9.0).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 1.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 5.0).unwrap();
        let g = b.build().unwrap();
        for seed in 0..20 {
            let m = heavy_edge_matching(&g, seed);
            assert_eq!(m.mate, vec![1, 0, 3, 2], "seed {seed}");
        }
    }

    #[test]
    fn isolated_nodes_stay_single() {
        let mut b = GraphBuilder::with_nodes(3);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let g = b.build().unwrap();
        let m = heavy_edge_matching(&g, 7);
        assert_eq!(m.mate[2], 2);
        assert_eq!(m.pair_count(), 1);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = weighted_path();
        assert_eq!(heavy_edge_matching(&g, 42), heavy_edge_matching(&g, 42));
    }
}
