//! Partition quality metrics.

use ceps_graph::CsrGraph;

/// Total weight of edges whose endpoints lie in different parts.
pub fn edge_cut(graph: &CsrGraph, assignment: &[u32]) -> f64 {
    graph
        .edges()
        .filter(|(a, b, _)| assignment[a.index()] != assignment[b.index()])
        .map(|(_, _, w)| w)
        .sum()
}

/// Fraction of total edge weight that is cut, in `[0, 1]` (0 for an
/// edgeless graph).
pub fn cut_fraction(graph: &CsrGraph, assignment: &[u32]) -> f64 {
    let total = graph.total_weight();
    if total == 0.0 {
        0.0
    } else {
        edge_cut(graph, assignment) / total
    }
}

/// Node counts per part.
pub fn part_sizes(assignment: &[u32], k: usize) -> Vec<usize> {
    let mut sizes = vec![0usize; k];
    for &p in assignment {
        sizes[p as usize] += 1;
    }
    sizes
}

/// Balance factor: `max part size / ideal size` (1.0 = perfectly balanced).
pub fn balance(assignment: &[u32], k: usize) -> f64 {
    let sizes = part_sizes(assignment, k);
    let ideal = assignment.len() as f64 / k as f64;
    sizes.iter().copied().max().unwrap_or(0) as f64 / ideal
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceps_graph::{GraphBuilder, NodeId};

    fn square() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for (x, y, w) in [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (3, 0, 4.0)] {
            b.add_edge(NodeId(x), NodeId(y), w).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn cut_counts_cross_part_weight() {
        let g = square();
        // Split {0,1} vs {2,3}: cuts edges 1-2 (2.0) and 3-0 (4.0).
        assert_eq!(edge_cut(&g, &[0, 0, 1, 1]), 6.0);
        assert_eq!(edge_cut(&g, &[0, 0, 0, 0]), 0.0);
        assert!((cut_fraction(&g, &[0, 0, 1, 1]) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn sizes_and_balance() {
        let a = [0u32, 0, 0, 1];
        assert_eq!(part_sizes(&a, 2), vec![3, 1]);
        assert!((balance(&a, 2) - 1.5).abs() < 1e-12);
        let even = [0u32, 1, 0, 1];
        assert!((balance(&even, 2) - 1.0).abs() < 1e-12);
    }
}
