//! Boundary refinement — a greedy Kernighan–Lin/FM-style pass.

use ceps_graph::{CsrGraph, NodeId};

/// One refinement sweep: for every boundary node, move it to the adjacent
/// part with the largest positive cut-gain, subject to the balance
/// constraint. Returns the total gain achieved.
///
/// `capacity` is the maximum allowed part weight; moves that would push the
/// destination past it (or empty the source part entirely) are skipped.
pub fn refine_pass(
    graph: &CsrGraph,
    node_weight: &[f64],
    assignment: &mut [u32],
    part_weight: &mut [f64],
    capacity: f64,
) -> f64 {
    let k = part_weight.len();
    let mut total_gain = 0.0;
    let mut conn = vec![0f64; k]; // connection strength to each part

    for v in 0..graph.node_count() {
        let vid = NodeId::from_index(v);
        let from = assignment[v] as usize;

        conn.iter_mut().for_each(|c| *c = 0.0);
        let mut boundary = false;
        for (u, w) in graph.neighbors(vid) {
            let p = assignment[u.index()] as usize;
            conn[p] += w;
            if p != from {
                boundary = true;
            }
        }
        if !boundary {
            continue;
        }

        // Best destination by gain = conn[to] - conn[from].
        let mut best: Option<(usize, f64)> = None;
        for (to, &c) in conn.iter().enumerate() {
            if to == from {
                continue;
            }
            let gain = c - conn[from];
            if gain > 0.0
                && part_weight[to] + node_weight[v] <= capacity
                && part_weight[from] - node_weight[v] > 0.0
            {
                match best {
                    Some((_, bg)) if bg >= gain => {}
                    _ => best = Some((to, gain)),
                }
            }
        }
        if let Some((to, gain)) = best {
            assignment[v] = to as u32;
            part_weight[from] -= node_weight[v];
            part_weight[to] += node_weight[v];
            total_gain += gain;
        }
    }
    total_gain
}

/// Runs refinement passes until a pass yields no gain (or `max_passes`).
pub fn refine(
    graph: &CsrGraph,
    node_weight: &[f64],
    assignment: &mut [u32],
    k: usize,
    epsilon: f64,
    max_passes: usize,
) {
    let total: f64 = node_weight.iter().sum();
    let capacity = (1.0 + epsilon) * total / k as f64;
    let mut part_weight = vec![0f64; k];
    for (v, &p) in assignment.iter().enumerate() {
        part_weight[p as usize] += node_weight[v];
    }
    for _ in 0..max_passes {
        let gain = refine_pass(graph, node_weight, assignment, &mut part_weight, capacity);
        if gain <= 0.0 {
            break;
        }
    }
}

/// Projects a coarse-level assignment to the finer level via the fine→coarse
/// map produced during contraction.
pub fn project(coarse_assignment: &[u32], to_coarser: &[u32]) -> Vec<u32> {
    to_coarser
        .iter()
        .map(|&c| coarse_assignment[c as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::edge_cut;
    use ceps_graph::GraphBuilder;

    /// Two triangles bridged by one edge; a deliberately bad assignment puts
    /// one triangle node on the wrong side.
    fn bridged_triangles() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for (x, y) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(NodeId(x), NodeId(y), 2.0).unwrap();
        }
        b.add_edge(NodeId(2), NodeId(3), 0.5).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn refinement_fixes_a_misassigned_node() {
        let g = bridged_triangles();
        let w = vec![1.0; 6];
        let mut a = vec![0, 0, 1, 1, 1, 1]; // node 2 wrongly in part 1
        let before = edge_cut(&g, &a);
        refine(&g, &w, &mut a, 2, 0.5, 8);
        let after = edge_cut(&g, &a);
        assert!(after < before, "cut {before} -> {after}");
        assert_eq!(a, vec![0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn refinement_respects_capacity() {
        let g = bridged_triangles();
        let w = vec![1.0; 6];
        // epsilon = 0: capacity is exactly 3 per part; the balanced optimum
        // is reachable but nothing may overfill.
        let mut a = vec![0, 0, 1, 1, 1, 1];
        refine(&g, &w, &mut a, 2, 0.0, 8);
        let counts = [
            a.iter().filter(|&&p| p == 0).count(),
            a.iter().filter(|&&p| p == 1).count(),
        ];
        assert!(counts.iter().all(|&c| c <= 3));
    }

    #[test]
    fn optimal_assignment_is_a_fixed_point() {
        let g = bridged_triangles();
        let w = vec![1.0; 6];
        let mut a = vec![0, 0, 0, 1, 1, 1];
        let before = a.clone();
        refine(&g, &w, &mut a, 2, 0.5, 8);
        assert_eq!(a, before);
    }

    #[test]
    fn projection_composes_maps() {
        let coarse = vec![0u32, 1];
        let map = vec![0u32, 0, 1, 1, 0];
        assert_eq!(project(&coarse, &map), vec![0, 0, 1, 1, 0]);
    }
}
