//! Property-based tests for the multilevel partitioner.

use ceps_graph::{GraphBuilder, NodeId};
use ceps_partition::{partition_graph, PartitionConfig};
use proptest::prelude::*;

/// Random connected graph: spanning path + chords, 4..=40 nodes.
fn arb_graph() -> impl Strategy<Value = ceps_graph::CsrGraph> {
    (4usize..=40).prop_flat_map(|n| {
        let chords = proptest::collection::vec((0..n, 0..n, 0.1f64..5.0), 0..3 * n);
        (Just(n), chords).prop_map(|(n, chords)| {
            let mut b = GraphBuilder::with_nodes(n);
            for i in 0..n - 1 {
                b.add_edge(NodeId(i as u32), NodeId(i as u32 + 1), 1.0)
                    .unwrap();
            }
            for (a, c, w) in chords {
                if a != c {
                    b.add_edge(NodeId(a as u32), NodeId(c as u32), w).unwrap();
                }
            }
            b.build().unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every node is assigned to a part in range, for any k and seed.
    #[test]
    fn assignment_is_total_and_in_range(
        g in arb_graph(),
        k in 1usize..8,
        seed in 0u64..1000,
    ) {
        prop_assume!(k <= g.node_count());
        let cfg = PartitionConfig { seed, ..PartitionConfig::with_parts(k) };
        let p = partition_graph(&g, &cfg).unwrap();
        prop_assert_eq!(p.assignment().len(), g.node_count());
        prop_assert!(p.assignment().iter().all(|&x| (x as usize) < k));
    }

    /// The covering subgraph always contains all query nodes and is closed
    /// under "same part" membership.
    #[test]
    fn covering_subgraph_is_part_closed(
        g in arb_graph(),
        k in 2usize..6,
        seed in 0u64..100,
        picks in proptest::collection::vec(0usize..40, 1..4),
    ) {
        prop_assume!(k <= g.node_count());
        let cfg = PartitionConfig { seed, ..PartitionConfig::with_parts(k) };
        let p = partition_graph(&g, &cfg).unwrap();
        let queries: Vec<NodeId> = picks
            .iter()
            .map(|&x| NodeId((x % g.node_count()) as u32))
            .collect();
        let cover = p.covering_subgraph(&queries);
        for &q in &queries {
            prop_assert!(cover.contains(q));
        }
        for v in g.nodes() {
            if cover.contains(v) {
                // Everything in v's part must also be covered.
                let part = p.part_of(v);
                for u in g.nodes() {
                    if p.part_of(u) == part {
                        prop_assert!(cover.contains(u));
                    }
                }
            }
        }
    }

    /// Cut weight never exceeds total weight, and k=1 cuts nothing.
    #[test]
    fn cut_is_bounded(g in arb_graph(), k in 1usize..6, seed in 0u64..50) {
        prop_assume!(k <= g.node_count());
        let cfg = PartitionConfig { seed, ..PartitionConfig::with_parts(k) };
        let p = partition_graph(&g, &cfg).unwrap();
        let cut = p.edge_cut(&g);
        prop_assert!(cut >= 0.0);
        prop_assert!(cut <= g.total_weight() + 1e-9);
        if k == 1 {
            prop_assert_eq!(cut, 0.0);
        }
    }
}
