//! # ceps-pool
//!
//! A persistent worker pool for the workspace's hot-path kernels — built so
//! one parallel sparse product costs a single wake→work→sleep round trip
//! instead of a thread spawn per call.
//!
//! The previous parallel kernel spawned a fresh `crossbeam::thread::scope`
//! on **every** power iteration (~50 spawns + joins per RWR solve), which
//! made `--threads` a slowdown at every scale the benchmarks cover. This
//! crate replaces that with:
//!
//! * **N − 1 parked workers, created once** ([`WorkerPool::new`]; the
//!   calling thread is worker 0 and always participates).
//! * **A generation (sense-reversing) barrier**: dispatch bumps an epoch
//!   counter under a mutex and broadcasts on a condvar; each worker keeps
//!   the last epoch it served, so a single `u64` flip separates "job `k`"
//!   from "job `k + 1`" — no hand-shaking per chunk, one wake per job.
//! * **Caller-defined work claiming**: the job closure receives the worker
//!   index and typically drains an atomic cursor over pre-split chunks
//!   (work-stealing; see `Transition::par_apply_block` in `ceps-graph`).
//! * **A sequential escape hatch**: if a dispatch arrives while another is
//!   in flight (nested parallelism — e.g. serving workers sharing one
//!   pool), the caller just runs the whole job inline. No deadlocks, no
//!   oversubscription, identical results.
//!
//! The pool is deliberately dependency-free apart from `ceps-obs`
//! telemetry (`pool.wake` counts dispatch rounds; the kernels layer
//! `pool.apply` spans and `pool.chunks_stolen` on top).
//!
//! ## Safety
//!
//! This is the one crate in the workspace that needs `unsafe`: a job is a
//! borrowed closure (`&dyn Fn(usize) + Sync`) executed by threads that
//! outlive the borrow. The pointer is lifetime-erased while it sits in the
//! shared slot, and [`WorkerPool::run`] does not return until every worker
//! has finished the job and the slot is cleared — so no worker can observe
//! the pointer after the borrow ends. The invariant is local to this file
//! and documented at both `unsafe` sites.

#![warn(missing_docs)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

static LIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Number of parked pool worker threads currently alive in this process —
/// exact, because [`WorkerPool`]'s `Drop` joins every worker before
/// returning. Lets tests (and operators) assert pools don't leak threads.
pub fn live_workers() -> usize {
    LIVE_WORKERS.load(Ordering::SeqCst)
}

/// Decrements [`live_workers`] when a worker thread exits, however it
/// exits.
struct LivenessGuard;

impl Drop for LivenessGuard {
    fn drop(&mut self) {
        LIVE_WORKERS.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Default minimum estimated work (`nnz × cols` multiply-adds) below which
/// callers should prefer the sequential kernel over a pool dispatch.
///
/// A wake/park round trip costs a few microseconds; a multiply-add costs a
/// fraction of a nanosecond. Below ~256k fused ops the parallel section is
/// too short to amortize the barrier, and small graphs/presets must never
/// regress — so the kernels fall back to sequential under this threshold.
/// Tune per pool with [`WorkerPool::with_min_work`] /
/// [`PoolHandle::with_min_work`] (benchmarks force `0` to measure the pool
/// itself).
pub const DEFAULT_MIN_WORK: usize = 1 << 18;

/// How many chunks each worker should get on average when splitting work,
/// so faster workers can steal from slower ones without the chunk count
/// exploding.
pub const CHUNKS_PER_WORKER: usize = 4;

/// Resolves a requested thread count: `0` means "auto" — the machine's
/// available parallelism.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
    } else {
        requested
    }
}

/// Lifetime-erased pointer to the job closure. Only ever dereferenced
/// between the epoch bump that publishes it and the `active == 0`
/// acknowledgement that [`WorkerPool::run`] awaits before returning — i.e.
/// strictly inside the closure's real lifetime.
#[derive(Clone, Copy)]
struct Job {
    ptr: *const (dyn Fn(usize) + Sync),
}

// SAFETY: the pointee is `Sync` (shared calls from any thread are fine) and
// `run` keeps the pointee alive for as long as any worker can hold the
// pointer (see the module docs).
unsafe impl Send for Job {}

/// State under the barrier mutex.
struct Control {
    /// Barrier generation: bumped once per dispatched job. The `u64` never
    /// wraps in practice (2⁶⁴ iterations), which is what makes the
    /// sense-reversing scheme single-writer simple.
    epoch: u64,
    /// Workers still running the current job.
    active: usize,
    /// Current job, present exactly while `epoch` is "open".
    job: Option<Job>,
    /// A worker caught a panic from the job closure.
    panicked: bool,
    /// Pool is being dropped; workers exit.
    shutdown: bool,
}

struct Shared {
    control: Mutex<Control>,
    /// Workers park here between jobs.
    start: Condvar,
    /// The dispatching thread parks here until `active == 0`.
    done: Condvar,
}

/// A persistent pool of parked worker threads executing borrowed closures.
///
/// `threads` counts the **calling thread too**: `WorkerPool::new(4)` spawns
/// 3 parked workers and the caller becomes worker 0 of every
/// [`run`](WorkerPool::run). `new(1)` (or `new(0)`) spawns nothing and
/// `run` degenerates to a plain call — so holding a pool is always safe,
/// whatever the machine.
///
/// Dropping the pool joins all workers; a pool is reused for any number of
/// jobs (that is the point — see [`WorkerPool::rounds`]).
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Serializes dispatches; `try_lock` failure = nested parallelism, run
    /// the job inline instead of deadlocking or oversubscribing.
    run_gate: Mutex<()>,
    threads: usize,
    min_work: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("min_work", &self.min_work)
            .field("rounds", &self.rounds())
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool of `threads` total workers (including the caller)
    /// with the [`DEFAULT_MIN_WORK`] advisory threshold. `0` resolves to
    /// the machine's available parallelism.
    pub fn new(threads: usize) -> Self {
        Self::with_min_work(threads, DEFAULT_MIN_WORK)
    }

    /// [`WorkerPool::new`] with a custom advisory work threshold (consulted
    /// by the kernels via [`WorkerPool::min_work`]; `0` disables the
    /// sequential fallback).
    pub fn with_min_work(threads: usize, min_work: usize) -> Self {
        let threads = resolve_threads(threads).max(1);
        let shared = Arc::new(Shared {
            control: Mutex::new(Control {
                epoch: 0,
                active: 0,
                job: None,
                panicked: false,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ceps-pool-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("spawning pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            run_gate: Mutex::new(()),
            threads,
            min_work,
        }
    }

    /// Total worker count, calling thread included.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Advisory sequential-fallback threshold (estimated fused ops).
    pub fn min_work(&self) -> usize {
        self.min_work
    }

    /// How many jobs have been dispatched to the parked workers so far
    /// (inline/sequential fallbacks don't count). Diagnostic: lets tests
    /// assert that repeated solves *reuse* the pool.
    pub fn rounds(&self) -> u64 {
        self.shared
            .control
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .epoch
    }

    /// Runs `job` once per worker, concurrently: `job(w)` is called with
    /// each worker index in `0..threads()` (0 = the calling thread). The
    /// closure typically claims work units off a shared atomic cursor, so
    /// every worker call cooperates on one work list and any single call
    /// completing alone is also correct — which is exactly what happens in
    /// the two sequential fallbacks:
    ///
    /// * no parked workers (`threads() == 1`), or
    /// * another dispatch is already in flight (nested parallelism) —
    ///   then only `job(0)` runs, on the caller.
    ///
    /// Returns once every worker has finished. Panics from any worker
    /// (including the caller) are re-raised here after the barrier
    /// completes, so no thread is left running a stale job.
    pub fn run(&self, job: &(dyn Fn(usize) + Sync)) {
        if self.handles.is_empty() {
            return job(0);
        }
        // A poisoned gate just means a previous job panicked (and was
        // re-raised to its caller); the barrier itself completed, so the
        // pool is still healthy — recover the guard rather than degrading
        // every later dispatch to inline.
        let _dispatch = match self.run_gate.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return job(0),
        };
        ceps_obs::counter("pool.wake", 1);
        {
            let mut c = self
                .shared
                .control
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            debug_assert!(c.job.is_none() && c.active == 0, "barrier out of sync");
            // SAFETY: the pointer is cleared below before `run` returns,
            // and workers only load it while `active > 0` — strictly within
            // `job`'s borrow (see module docs).
            c.job = Some(Job {
                ptr: unsafe {
                    std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(
                        job,
                    )
                },
            });
            c.active = self.handles.len();
            c.epoch += 1;
            self.shared.start.notify_all();
        }
        let leader = catch_unwind(AssertUnwindSafe(|| job(0)));
        let worker_panicked = {
            let mut c = self
                .shared
                .control
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            while c.active > 0 {
                c = self
                    .shared
                    .done
                    .wait(c)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            c.job = None;
            std::mem::take(&mut c.panicked)
        };
        if let Err(payload) = leader {
            resume_unwind(payload);
        }
        assert!(!worker_panicked, "worker pool job panicked");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut c = self
                .shared
                .control
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            c.shutdown = true;
            self.shared.start.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    LIVE_WORKERS.fetch_add(1, Ordering::SeqCst);
    let _liveness = LivenessGuard;
    let mut seen = 0u64;
    loop {
        let job = {
            let mut c = shared
                .control
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if c.shutdown {
                    return;
                }
                if c.epoch != seen {
                    break;
                }
                c = shared
                    .start
                    .wait(c)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            seen = c.epoch;
            c.job.expect("epoch advanced without a job")
        };
        // SAFETY: `active > 0` for this worker until the decrement below,
        // so `run` is still borrowing the closure (see module docs).
        let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.ptr)(index) }));
        let mut c = shared
            .control
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if outcome.is_err() {
            c.panicked = true;
        }
        c.active -= 1;
        if c.active == 0 {
            shared.done.notify_one();
        }
    }
}

/// A cheap, clonable, **lazy** handle to a shared [`WorkerPool`].
///
/// Engines and services hold handles, not pools: cloning a handle shares
/// the same (future) pool, and no threads exist until the first dispatch
/// that actually clears the work threshold — so constructing an engine on
/// a small graph, or with `threads <= 1`, never spawns anything.
#[derive(Clone)]
pub struct PoolHandle {
    cell: Arc<OnceLock<Arc<WorkerPool>>>,
    threads: usize,
    min_work: usize,
}

impl std::fmt::Debug for PoolHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolHandle")
            .field("threads", &self.threads)
            .field("min_work", &self.min_work)
            .field("materialized", &self.cell.get().is_some())
            .finish()
    }
}

impl PoolHandle {
    /// A handle that will materialize a pool of `threads` workers
    /// (`0` = auto: available parallelism) on first eligible use.
    pub fn new(threads: usize) -> Self {
        Self::with_min_work(threads, DEFAULT_MIN_WORK)
    }

    /// [`PoolHandle::new`] with a custom work threshold for
    /// [`PoolHandle::acquire`] (`0` = always parallel-eligible).
    pub fn with_min_work(threads: usize, min_work: usize) -> Self {
        PoolHandle {
            cell: Arc::new(OnceLock::new()),
            threads: resolve_threads(threads).max(1),
            min_work,
        }
    }

    /// The resolved thread count this handle materializes.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The sequential-fallback threshold [`PoolHandle::acquire`] applies.
    pub fn min_work(&self) -> usize {
        self.min_work
    }

    /// The pool, if a dispatch has materialized it already.
    pub fn get(&self) -> Option<&Arc<WorkerPool>> {
        self.cell.get()
    }

    /// The pool to use for a job of `estimated_work` fused ops — `None`
    /// when the job should run sequentially (single-threaded handle, or
    /// work under the threshold). Creates the pool on first eligible call;
    /// all clones of this handle share it.
    pub fn acquire(&self, estimated_work: usize) -> Option<&Arc<WorkerPool>> {
        if self.threads <= 1 || estimated_work < self.min_work {
            return None;
        }
        Some(
            self.cell
                .get_or_init(|| Arc::new(WorkerPool::with_min_work(self.threads, self.min_work))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Pool-creating tests share [`live_workers`]'s process-global counter,
    /// so they run one at a time.
    fn serial() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn resolve_zero_is_auto_and_nonzero_is_exact() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
    }

    #[test]
    fn single_threaded_pool_runs_inline() {
        let _serial = serial();
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let hits = AtomicUsize::new(0);
        pool.run(&|w| {
            assert_eq!(w, 0);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        assert_eq!(pool.rounds(), 0, "inline runs are not barrier rounds");
    }

    #[test]
    fn every_worker_index_participates() {
        let _serial = serial();
        let pool = WorkerPool::new(4);
        let seen = [(); 4].map(|()| AtomicUsize::new(0));
        pool.run(&|w| {
            seen[w].fetch_add(1, Ordering::SeqCst);
        });
        for (w, s) in seen.iter().enumerate() {
            assert_eq!(s.load(Ordering::SeqCst), 1, "worker {w}");
        }
    }

    #[test]
    fn pool_is_reused_across_many_rounds() {
        let _serial = serial();
        let pool = WorkerPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.run(&|_| {
                total.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), 300);
        assert_eq!(pool.rounds(), 100);
    }

    #[test]
    fn cursor_based_jobs_cover_every_chunk_exactly_once() {
        let _serial = serial();
        let pool = WorkerPool::new(4);
        let chunks: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let cursor = AtomicUsize::new(0);
        pool.run(&|_| loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= chunks.len() {
                break;
            }
            chunks[i].fetch_add(1, Ordering::SeqCst);
        });
        for (i, c) in chunks.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "chunk {i}");
        }
    }

    #[test]
    fn nested_dispatch_falls_back_to_inline() {
        let _serial = serial();
        let pool = WorkerPool::new(2);
        let inner_calls = AtomicUsize::new(0);
        // The outer job holds the dispatch gate, so the inner dispatch (from
        // whichever thread) must run inline as worker 0 only.
        pool.run(&|_| {
            pool.run(&|w| {
                assert_eq!(w, 0);
                inner_calls.fetch_add(1, Ordering::SeqCst);
            });
        });
        // One inner run per outer worker call, each inline.
        assert_eq!(inner_calls.load(Ordering::SeqCst), 2);
        assert_eq!(pool.rounds(), 1);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let _serial = serial();
        let pool = WorkerPool::new(3);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|w| {
                if w == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The barrier completed; the pool still works.
        let hits = AtomicUsize::new(0);
        pool.run(&|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn drop_joins_all_workers() {
        let _serial = serial();
        let before = live_workers();
        {
            let pool = WorkerPool::new(5);
            // A completed round proves every worker started (and
            // incremented the liveness counter).
            pool.run(&|_| {});
            assert_eq!(live_workers(), before + 4);
        }
        // Drop joined the handles; join() returning means the threads have
        // exited and run their liveness guards — this is exact, not racy.
        assert_eq!(live_workers(), before);
    }

    #[test]
    fn handle_is_lazy_shared_and_thresholded() {
        let _serial = serial();
        let h = PoolHandle::with_min_work(3, 100);
        assert_eq!(h.threads(), 3);
        assert!(h.get().is_none(), "no pool before first acquire");
        assert!(h.acquire(99).is_none(), "under threshold stays sequential");
        assert!(h.get().is_none(), "ineligible acquire must not spawn");
        let pool = Arc::clone(h.acquire(100).expect("eligible"));
        let again = h.clone();
        assert!(
            Arc::ptr_eq(&pool, again.acquire(5000).expect("shared")),
            "clones share one pool"
        );
        assert_eq!(pool.threads(), 3);

        let single = PoolHandle::new(1);
        assert!(single.acquire(usize::MAX).is_none());
    }
}
