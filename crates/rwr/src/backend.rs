//! The [`ScoreBackend`] trait — one interface over the four individual-score
//! solvers of the workspace.
//!
//! Step 1 of the CePS pipeline ("individual score calculation", Eq. 4) can be
//! answered four ways, each with a different offline/online trade-off:
//!
//! | backend | offline cost | online cost | exactness |
//! |---|---|---|---|
//! | [`IterativeScores`] (power iteration) | none | `m` sparse passes | iterative |
//! | [`PushScores`] (forward push) | none | local, skew-bounded | `ε`-approximate |
//! | [`crate::precomputed::PrecomputedRwr`] | `O(N³)` LU | one column copy | exact |
//! | [`crate::blockwise::BlockwiseRwr`] | `Σ n_b³` per-block LU | one block solve | drops cross-block mass |
//!
//! The pipeline holds a `dyn ScoreBackend` and never match-dispatches on the
//! concrete type; callers pick the backend via `ceps_core::ScoreMethod`. All
//! four produce rows that depend **only on their own query node** (never on
//! the other queries in the batch), which is the invariant the row cache
//! ([`crate::cache`]) relies on: a row solved in one batch is bitwise-valid
//! in any other batch against the same backend.

use std::sync::Arc;

use ceps_graph::{NodeId, Transition};
use ceps_pool::PoolHandle;

use crate::blockwise::BlockwiseRwr;
use crate::precomputed::PrecomputedRwr;
use crate::push::forward_push;
use crate::scratch::ScratchPool;
use crate::{Result, RwrConfig, RwrEngine, ScoreMatrix};

/// A solver for individual RWR closeness scores (Step 1 of Table 1).
///
/// Implementations must be deterministic and **batch-independent**: the row
/// returned for query `q` is a pure function of `(backend, q)`, bitwise
/// identical however the surrounding query set is composed. The row cache
/// depends on this contract.
pub trait ScoreBackend: Send + Sync {
    /// Number of nodes each score row covers.
    fn node_count(&self) -> usize;

    /// Solves the `Q × N` score matrix for `queries` (row `i` = `r(i, ·)`).
    ///
    /// # Errors
    /// [`crate::RwrError::NoQueries`] on an empty slice,
    /// [`crate::RwrError::BadQueryNode`] for out-of-range queries, plus any
    /// backend-specific solve error.
    fn scores(&self, queries: &[NodeId]) -> Result<ScoreMatrix>;

    /// Short human-readable backend name (diagnostics and reports).
    fn method_name(&self) -> &'static str;
}

/// Owned power-iteration backend: an [`RwrEngine`] that shares its
/// [`Transition`] through an `Arc` instead of borrowing it, so engines and
/// services built on it are `'static`.
///
/// The backend also owns the solver's persistent resources: a lazy
/// [`PoolHandle`] (workers spawn once, on the first solve big enough to
/// parallelize, and are reused by every later call) and a [`ScratchPool`]
/// of iteration buffers. Clones share both, so a service cloning its
/// backend across workers still runs one worker pool.
#[derive(Debug, Clone)]
pub struct IterativeScores {
    transition: Arc<Transition>,
    config: RwrConfig,
    pool: PoolHandle,
    scratch: Arc<ScratchPool>,
}

impl IterativeScores {
    /// Creates the backend over a shared operator, with its own lazy
    /// worker pool sized from `config.threads`.
    ///
    /// # Errors
    /// Propagates [`RwrConfig::validate`].
    pub fn new(transition: Arc<Transition>, config: RwrConfig) -> Result<Self> {
        Self::with_pool(transition, config, PoolHandle::new(config.threads))
    }

    /// Creates the backend sharing an existing worker-pool handle (e.g.
    /// the engine-wide pool `ceps-core` threads through the pipeline).
    ///
    /// # Errors
    /// Propagates [`RwrConfig::validate`].
    pub fn with_pool(
        transition: Arc<Transition>,
        config: RwrConfig,
        pool: PoolHandle,
    ) -> Result<Self> {
        config.validate()?;
        Ok(IterativeScores {
            transition,
            config,
            pool,
            scratch: Arc::new(ScratchPool::new()),
        })
    }

    /// The solver configuration.
    pub fn config(&self) -> &RwrConfig {
        &self.config
    }

    /// The shared operator.
    pub fn transition(&self) -> &Arc<Transition> {
        &self.transition
    }

    /// The worker-pool handle solves dispatch through.
    pub fn pool(&self) -> &PoolHandle {
        &self.pool
    }

    /// The shared scratch pool backing per-call iteration buffers.
    pub fn scratch(&self) -> &Arc<ScratchPool> {
        &self.scratch
    }
}

impl ScoreBackend for IterativeScores {
    fn node_count(&self) -> usize {
        self.transition.node_count()
    }

    fn scores(&self, queries: &[NodeId]) -> Result<ScoreMatrix> {
        RwrEngine::with_pool(
            &self.transition,
            self.config,
            self.pool.clone(),
            Arc::clone(&self.scratch),
        )?
        .solve_many(queries)
    }

    fn method_name(&self) -> &'static str {
        "iterative"
    }
}

/// Owned forward-push backend (per-source local pushes, `ε` residual bound).
#[derive(Debug, Clone)]
pub struct PushScores {
    transition: Arc<Transition>,
    c: f64,
    epsilon: f64,
}

impl PushScores {
    /// Creates the backend.
    ///
    /// # Errors
    /// [`crate::RwrError::InvalidRestart`] for `c ∉ (0, 1)`.
    pub fn new(transition: Arc<Transition>, c: f64, epsilon: f64) -> Result<Self> {
        if !(c > 0.0 && c < 1.0) {
            return Err(crate::RwrError::InvalidRestart { c });
        }
        Ok(PushScores {
            transition,
            c,
            epsilon,
        })
    }

    /// The push threshold.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

impl ScoreBackend for PushScores {
    fn node_count(&self) -> usize {
        self.transition.node_count()
    }

    fn scores(&self, queries: &[NodeId]) -> Result<ScoreMatrix> {
        if queries.is_empty() {
            return Err(crate::RwrError::NoQueries);
        }
        let n = self.transition.node_count();
        let mut data = Vec::with_capacity(queries.len() * n);
        for &q in queries {
            let run = forward_push(&self.transition, self.c, q, self.epsilon)?;
            data.extend_from_slice(&run.scores);
        }
        ScoreMatrix::from_flat(queries.to_vec(), data, n)
    }

    fn method_name(&self) -> &'static str {
        "push"
    }
}

/// Borrowed iterative engines are backends too (tests, one-shot solves).
impl ScoreBackend for RwrEngine<'_> {
    fn node_count(&self) -> usize {
        self.transition().node_count()
    }

    fn scores(&self, queries: &[NodeId]) -> Result<ScoreMatrix> {
        self.solve_many(queries)
    }

    fn method_name(&self) -> &'static str {
        "iterative"
    }
}

impl ScoreBackend for PrecomputedRwr {
    fn node_count(&self) -> usize {
        PrecomputedRwr::node_count(self)
    }

    fn scores(&self, queries: &[NodeId]) -> Result<ScoreMatrix> {
        self.query_many(queries)
    }

    fn method_name(&self) -> &'static str {
        "precomputed"
    }
}

impl ScoreBackend for BlockwiseRwr {
    fn node_count(&self) -> usize {
        BlockwiseRwr::node_count(self)
    }

    fn scores(&self, queries: &[NodeId]) -> Result<ScoreMatrix> {
        self.query_many(queries)
    }

    fn method_name(&self) -> &'static str {
        "blockwise"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceps_graph::{normalize::Normalization, GraphBuilder};

    fn transition() -> Arc<Transition> {
        let mut b = GraphBuilder::new();
        for (x, y, w) in [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.5), (3, 0, 1.0)] {
            b.add_edge(NodeId(x), NodeId(y), w).unwrap();
        }
        let g = b.build().unwrap();
        Arc::new(Transition::new(&g, Normalization::ColumnStochastic))
    }

    #[test]
    fn iterative_backend_matches_borrowed_engine() {
        let t = transition();
        let cfg = RwrConfig {
            threads: 1,
            ..Default::default()
        };
        let owned = IterativeScores::new(Arc::clone(&t), cfg).unwrap();
        let borrowed = RwrEngine::new(&t, cfg).unwrap();
        let queries = [NodeId(0), NodeId(2)];
        assert_eq!(
            owned.scores(&queries).unwrap(),
            ScoreBackend::scores(&borrowed, &queries).unwrap()
        );
        assert_eq!(owned.node_count(), 4);
        assert_eq!(owned.method_name(), "iterative");
    }

    #[test]
    fn push_backend_solves_per_source() {
        let t = transition();
        let push = PushScores::new(Arc::clone(&t), 0.5, 1e-9).unwrap();
        let m = push.scores(&[NodeId(1)]).unwrap();
        assert_eq!(m.query_count(), 1);
        assert!((m.row_sums()[0] - 1.0).abs() < 1e-6);
        assert!(matches!(push.scores(&[]), Err(crate::RwrError::NoQueries)));
        assert!(PushScores::new(t, 1.5, 1e-9).is_err());
    }

    #[test]
    fn dense_backends_expose_the_trait() {
        let t = transition();
        let pre = PrecomputedRwr::new(&t, 0.5, 100).unwrap();
        let m = ScoreBackend::scores(&pre, &[NodeId(0), NodeId(3)]).unwrap();
        assert_eq!(m.query_count(), 2);
        assert_eq!(ScoreBackend::node_count(&pre), 4);
        assert_eq!(pre.method_name(), "precomputed");

        let bw = BlockwiseRwr::new(&t, &[0, 0, 1, 1], 0.5, 100).unwrap();
        let m = ScoreBackend::scores(&bw, &[NodeId(2)]).unwrap();
        assert_eq!(m.query_count(), 1);
        assert_eq!(bw.method_name(), "blockwise");
    }

    #[test]
    fn backends_box_as_trait_objects() {
        let t = transition();
        let cfg = RwrConfig {
            threads: 1,
            ..Default::default()
        };
        let backends: Vec<Box<dyn ScoreBackend>> = vec![
            Box::new(IterativeScores::new(Arc::clone(&t), cfg).unwrap()),
            Box::new(PushScores::new(Arc::clone(&t), 0.5, 1e-8).unwrap()),
            Box::new(PrecomputedRwr::new(&t, 0.5, 100).unwrap()),
        ];
        for b in &backends {
            let m = b.scores(&[NodeId(0)]).unwrap();
            assert_eq!(m.node_count(), 4);
        }
    }
}
