//! Blockwise-precomputed RWR — the partition counterpart of
//! [`crate::precomputed`].
//!
//! Sec. 6 presents two speedups in tension: precompute the dense
//! `(I − c W̃)⁻¹` ("nearly real-time" queries, `O(N²)` memory) or
//! pre-partition the graph (cheap, approximate). This module combines
//! them the way Tong's later *Fast Random Walk with Restart* line does in
//! its simplest ("NB_LIN") form: normalize the **whole** graph once, drop
//! the cross-partition entries of `W̃`, and precompute a dense LU
//! factorization of `I − c W̃_b` **per block**. A query then costs one
//! dense triangular solve inside its own block — no iteration, no
//! whole-graph pass — and memory is `Σ n_b²` instead of `N²`.
//!
//! The approximation error is exactly the walk mass that would have
//! crossed partition boundaries, i.e. the same quantity Fast CePS's
//! `RelRatio` measures; on community-structured graphs it is small.

use ceps_graph::{NodeId, Transition};

use crate::exact::LuFactors;
use crate::{Result, RwrError, ScoreMatrix};

/// Per-partition dense RWR solvers over a shared normalization.
#[derive(Debug)]
pub struct BlockwiseRwr {
    /// Per-node block id.
    assignment: Vec<u32>,
    /// Per-block member lists (original node ids).
    members: Vec<Vec<u32>>,
    /// Per-block LU factors of `I − c W̃_b`.
    factors: Vec<LuFactors>,
    c: f64,
    node_count: usize,
}

impl BlockwiseRwr {
    /// Builds the per-block factorizations.
    ///
    /// * `transition` — the full-graph normalized operator (so blocks keep
    ///   the *global* degrees; cross-block mass is simply lost, making
    ///   every block sub-stochastic and the solves well-posed);
    /// * `assignment` — node → block (any `Partitioning::assignment()`);
    /// * `max_block` — refuse blocks larger than this (dense `n_b²` cost).
    ///
    /// # Errors
    /// [`RwrError::InvalidRestart`] for `c ∉ (0, 1)`;
    /// [`RwrError::GraphTooLarge`] if any block exceeds `max_block`.
    ///
    /// # Panics
    /// Panics if `assignment.len()` differs from the operator's node count.
    pub fn new(
        transition: &Transition,
        assignment: &[u32],
        c: f64,
        max_block: usize,
    ) -> Result<Self> {
        if !(c > 0.0 && c < 1.0) {
            return Err(RwrError::InvalidRestart { c });
        }
        let n = transition.node_count();
        assert_eq!(assignment.len(), n, "assignment must cover every node");

        let block_count = assignment
            .iter()
            .copied()
            .max()
            .map_or(0, |m| m as usize + 1);
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); block_count];
        for (v, &b) in assignment.iter().enumerate() {
            members[b as usize].push(v as u32);
        }

        let mut factors = Vec::with_capacity(block_count);
        for block in &members {
            let nb = block.len();
            if nb > max_block {
                return Err(RwrError::GraphTooLarge {
                    nodes: nb,
                    max_nodes: max_block,
                });
            }
            // Dense I - c * M restricted to the block (row-major).
            let mut local = vec![u32::MAX; n];
            for (i, &v) in block.iter().enumerate() {
                local[v as usize] = i as u32;
            }
            let mut a = vec![0f64; nb * nb];
            for i in 0..nb {
                a[i * nb + i] = 1.0;
            }
            for (i, &v) in block.iter().enumerate() {
                // Row v of M restricted to in-block columns.
                let (ids, coeffs) = transition.row(NodeId(v));
                for (u, m) in ids.iter().zip(coeffs.iter()) {
                    let j = local[*u as usize];
                    if j != u32::MAX {
                        a[i * nb + j as usize] -= c * m;
                    }
                }
            }
            factors.push(LuFactors::factor(a, nb));
        }
        Ok(BlockwiseRwr {
            assignment: assignment.to_vec(),
            members,
            factors,
            c,
            node_count: n,
        })
    }

    /// Number of nodes covered.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.members.len()
    }

    /// Total dense storage across blocks, in bytes — compare with the
    /// `N²` of [`crate::precomputed::PrecomputedRwr`].
    pub fn memory_bytes(&self) -> usize {
        self.members.iter().map(|m| m.len() * m.len() * 8).sum()
    }

    /// Approximate stationary distribution for one query: exact within the
    /// query's block, zero elsewhere (cross-block mass is dropped).
    ///
    /// # Errors
    /// [`RwrError::BadQueryNode`] for an out-of-range query.
    pub fn query(&self, q: NodeId) -> Result<Vec<f64>> {
        if q.index() >= self.node_count {
            return Err(RwrError::BadQueryNode {
                node: q,
                node_count: self.node_count,
            });
        }
        let b = self.assignment[q.index()] as usize;
        let block = &self.members[b];
        let nb = block.len();
        let mut rhs = vec![0f64; nb];
        let local_q = block
            .iter()
            .position(|&v| v == q.0)
            .expect("query is a member of its own block");
        rhs[local_q] = 1.0 - self.c;
        self.factors[b].solve_in_place(&mut rhs);

        let mut out = vec![0f64; self.node_count];
        for (i, &v) in block.iter().enumerate() {
            out[v as usize] = rhs[i];
        }
        Ok(out)
    }

    /// Score matrix for a query set.
    ///
    /// Queries are grouped by block and their rows written straight into
    /// the contiguous matrix: each block's member list is walked once per
    /// group, and no per-query full-`N` scratch vector is allocated (rows
    /// outside the query's block stay at the zero the matrix starts with).
    ///
    /// # Errors
    /// [`RwrError::NoQueries`] / [`RwrError::BadQueryNode`].
    pub fn query_many(&self, queries: &[NodeId]) -> Result<ScoreMatrix> {
        if queries.is_empty() {
            return Err(RwrError::NoQueries);
        }
        for &q in queries {
            if q.index() >= self.node_count {
                return Err(RwrError::BadQueryNode {
                    node: q,
                    node_count: self.node_count,
                });
            }
        }
        let mut matrix = ScoreMatrix::zeros(queries.to_vec(), self.node_count)?;
        let mut by_block: Vec<Vec<usize>> = vec![Vec::new(); self.members.len()];
        for (i, &q) in queries.iter().enumerate() {
            by_block[self.assignment[q.index()] as usize].push(i);
        }
        let mut rhs = Vec::new();
        for (b, group) in by_block.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let block = &self.members[b];
            for &i in group {
                rhs.clear();
                rhs.resize(block.len(), 0.0);
                let local_q = block
                    .iter()
                    .position(|&v| v == queries[i].0)
                    .expect("query is a member of its own block");
                rhs[local_q] = 1.0 - self.c;
                self.factors[b].solve_in_place(&mut rhs);
                let row = matrix.row_mut(i);
                for (li, &v) in block.iter().enumerate() {
                    row[v as usize] = rhs[li];
                }
            }
        }
        Ok(matrix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::solve_exact;
    use ceps_graph::{normalize::Normalization, GraphBuilder};

    /// Two triangles; optionally joined by a weak bridge.
    fn two_triangles(bridge: Option<f64>) -> Transition {
        let mut b = GraphBuilder::new();
        for base in [0u32, 3] {
            b.add_edge(NodeId(base), NodeId(base + 1), 2.0).unwrap();
            b.add_edge(NodeId(base + 1), NodeId(base + 2), 2.0).unwrap();
            b.add_edge(NodeId(base), NodeId(base + 2), 2.0).unwrap();
        }
        if let Some(w) = bridge {
            b.add_edge(NodeId(2), NodeId(3), w).unwrap();
        }
        let g = b.build().unwrap();
        Transition::new(&g, Normalization::ColumnStochastic)
    }

    const SPLIT: [u32; 6] = [0, 0, 0, 1, 1, 1];

    #[test]
    fn exact_when_blocks_match_components() {
        // No bridge: the blocks ARE the components, so blockwise = exact.
        let t = two_triangles(None);
        let bw = BlockwiseRwr::new(&t, &SPLIT, 0.5, 100).unwrap();
        for q in 0..6u32 {
            let exact = solve_exact(&t, 0.5, &[NodeId(q)]).unwrap();
            let approx = bw.query(NodeId(q)).unwrap();
            for j in 0..6 {
                assert!(
                    (exact.row(0)[j] - approx[j]).abs() < 1e-12,
                    "q={q} j={j}: {} vs {}",
                    exact.row(0)[j],
                    approx[j]
                );
            }
        }
    }

    #[test]
    fn weak_bridge_costs_little_mass() {
        // A weak bridge leaks a little mass; the in-block scores stay
        // close to exact and out-of-block scores are exactly zero.
        let t = two_triangles(Some(0.05));
        let bw = BlockwiseRwr::new(&t, &SPLIT, 0.5, 100).unwrap();
        let exact = solve_exact(&t, 0.5, &[NodeId(0)]).unwrap();
        let approx = bw.query(NodeId(0)).unwrap();
        for j in 0..3 {
            assert!(
                (exact.row(0)[j] - approx[j]).abs() < 0.02,
                "in-block node {j}"
            );
        }
        for j in 3..6 {
            assert_eq!(approx[j], 0.0, "cross-block node {j} must be zero");
        }
        // The dropped mass equals 1 - captured, and must be small.
        let captured: f64 = approx.iter().sum();
        assert!(captured > 0.97, "captured only {captured}");
    }

    #[test]
    fn memory_is_sum_of_block_squares() {
        let t = two_triangles(Some(1.0));
        let bw = BlockwiseRwr::new(&t, &SPLIT, 0.5, 100).unwrap();
        assert_eq!(bw.block_count(), 2);
        assert_eq!(bw.memory_bytes(), 2 * 3 * 3 * 8);
        // The monolithic precompute would need 6*6*8.
        assert!(bw.memory_bytes() < 6 * 6 * 8);
    }

    #[test]
    fn validates_inputs() {
        let t = two_triangles(None);
        assert!(BlockwiseRwr::new(&t, &SPLIT, 0.0, 100).is_err());
        assert!(matches!(
            BlockwiseRwr::new(&t, &SPLIT, 0.5, 2),
            Err(RwrError::GraphTooLarge {
                nodes: 3,
                max_nodes: 2
            })
        ));
        let bw = BlockwiseRwr::new(&t, &SPLIT, 0.5, 100).unwrap();
        assert!(bw.query(NodeId(99)).is_err());
        assert!(bw.query_many(&[]).is_err());
        let m = bw.query_many(&[NodeId(0), NodeId(4)]).unwrap();
        assert_eq!(m.query_count(), 2);
    }
}
