//! Shared per-query-node RWR row cache.
//!
//! An RWR row `r(i, ·)` is a pure function of the backend — the transition
//! operator, restart `c`, iteration budget and tolerance — and of the single
//! query node `i`; it does **not** depend on the other queries batched
//! alongside it (the batch-independence contract of
//! [`crate::backend::ScoreBackend`]). That makes completed rows safe to reuse
//! across queries, which is where serving workloads win: repository queries
//! are community hubs, so real query streams repeat nodes constantly.
//!
//! [`RwrRowCache`] is the store: sharded (`NodeId % shards` → one mutex per
//! shard, so concurrent workers rarely contend), bytes-budgeted (each shard
//! owns `budget / shards` bytes and LRU-evicts by a global logical clock when
//! full) and keyed by `NodeId` alone — the cache must therefore live no wider
//! than one backend. **Invalidation rule: one cache per
//! `(transition, RwrConfig, score variant)`; rebuild the graph or retune the
//! solver → drop the cache.** As defense in depth, lookups whose stored row
//! length disagrees with the caller's expected node count miss instead of
//! returning a stale-shaped row.
//!
//! [`scores_with_cache`] is the assembly loop `individual_scores` uses: probe
//! the cache for every query, batch **only the missing nodes** through one
//! backend solve, insert the fresh rows, and stitch the [`ScoreMatrix`]
//! together in the caller's query order. Rows are `Arc`-shared between the
//! cache and in-flight results, so eviction never copies or invalidates a
//! row a reader still holds.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ceps_graph::NodeId;

use crate::backend::ScoreBackend;
use crate::{Result, RwrError, ScoreMatrix};

/// Fixed per-row bookkeeping charge (map entry, `Arc` header, tick) added to
/// the `8 × len` payload when budgeting.
const ROW_OVERHEAD_BYTES: usize = 64;

/// Default shard count — enough to keep a handful of workers from
/// serialising on one mutex without fragmenting small budgets.
pub const DEFAULT_SHARDS: usize = 16;

#[derive(Debug)]
struct CachedRow {
    row: Arc<Vec<f64>>,
    /// Last-touch tick from the cache-wide logical clock; smallest = LRU.
    tick: u64,
}

#[derive(Debug, Default)]
struct Shard {
    rows: HashMap<u32, CachedRow>,
    bytes: usize,
}

impl Shard {
    fn evict_lru(&mut self) -> bool {
        let victim = self
            .rows
            .iter()
            .min_by_key(|(_, r)| r.tick)
            .map(|(&k, _)| k);
        match victim {
            Some(k) => {
                if let Some(dead) = self.rows.remove(&k) {
                    self.bytes -= row_bytes(dead.row.len());
                }
                true
            }
            None => false,
        }
    }
}

fn row_bytes(len: usize) -> usize {
    len * std::mem::size_of::<f64>() + ROW_OVERHEAD_BYTES
}

/// Counters describing cache behaviour since construction (or [`RwrRowCache::clear`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups that had to fall through to the backend.
    pub misses: u64,
    /// Rows removed to make room for newer ones.
    pub evictions: u64,
    /// Rows accepted into the store.
    pub insertions: u64,
    /// Rows refused because they exceed a whole shard's budget on their own.
    pub rejected: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 when the cache was never probed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Sharded, bytes-budgeted, LRU-evicting store of RWR rows keyed by query
/// [`NodeId`].
///
/// Cheap to share: wrap in `Arc` and clone the handle across workers. All
/// methods take `&self`; internal mutation is per-shard `Mutex` plus atomics.
#[derive(Debug)]
pub struct RwrRowCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard byte ceiling (total budget / shard count).
    shard_budget: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
    rejected: AtomicU64,
}

impl RwrRowCache {
    /// Creates a cache with `byte_budget` total capacity across
    /// [`DEFAULT_SHARDS`] shards. A zero budget is legal and caches nothing.
    pub fn new(byte_budget: usize) -> Self {
        Self::with_shards(byte_budget, DEFAULT_SHARDS)
    }

    /// Creates a cache with an explicit shard count (clamped to ≥ 1). The
    /// budget splits evenly: each shard may hold `byte_budget / shards` bytes.
    pub fn with_shards(byte_budget: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        RwrRowCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget: byte_budget / shards,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    fn shard(&self, node: NodeId) -> &Mutex<Shard> {
        &self.shards[node.index() % self.shards.len()]
    }

    /// Looks up the row for `node`, refreshing its LRU tick on hit.
    ///
    /// A stored row whose length differs from `expected_len` (a cache handle
    /// that outlived its graph) is treated as a miss, not returned.
    pub fn get(&self, node: NodeId, expected_len: usize) -> Option<Arc<Vec<f64>>> {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(node).lock().unwrap();
        let hit = shard.rows.get_mut(&node.0).and_then(|entry| {
            if entry.row.len() == expected_len {
                entry.tick = tick;
                Some(Arc::clone(&entry.row))
            } else {
                None
            }
        });
        drop(shard);
        match hit {
            Some(row) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                ceps_obs::counter("rwr.cache.hits", 1);
                Some(row)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                ceps_obs::counter("rwr.cache.misses", 1);
                None
            }
        }
    }

    /// Inserts (or refreshes) the row for `node`, evicting least-recently
    /// used rows in its shard until the shard fits its budget.
    ///
    /// Rows that alone exceed the per-shard budget are rejected outright —
    /// admitting one would evict the whole shard and still not fit.
    pub fn insert(&self, node: NodeId, row: Arc<Vec<f64>>) {
        let incoming = row_bytes(row.len());
        if incoming > self.shard_budget {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            ceps_obs::counter("rwr.cache.rejected", 1);
            return;
        }
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut evicted = 0u64;
        {
            let mut shard = self.shard(node).lock().unwrap();
            if let Some(old) = shard.rows.remove(&node.0) {
                shard.bytes -= row_bytes(old.row.len());
            }
            while shard.bytes + incoming > self.shard_budget {
                if shard.evict_lru() {
                    evicted += 1;
                } else {
                    break;
                }
            }
            shard.bytes += incoming;
            shard.rows.insert(node.0, CachedRow { row, tick });
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
        ceps_obs::counter("rwr.cache.insertions", 1);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            ceps_obs::counter("rwr.cache.evictions", evicted);
        }
    }

    /// Number of rows currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().rows.len())
            .sum()
    }

    /// True when no rows are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently charged across all shards.
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().bytes).sum()
    }

    /// Total byte budget (per-shard budget × shard count).
    pub fn byte_budget(&self) -> usize {
        self.shard_budget * self.shards.len()
    }

    /// Drops every resident row and resets the counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap();
            shard.rows.clear();
            shard.bytes = 0;
        }
        for counter in [
            &self.hits,
            &self.misses,
            &self.evictions,
            &self.insertions,
            &self.rejected,
        ] {
            counter.store(0, Ordering::Relaxed);
        }
    }

    /// Snapshot of the behaviour counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }
}

/// Solves `queries` against `backend`, serving rows from `cache` where
/// possible and batching **only the missing nodes** through one backend call.
///
/// The returned matrix is row-for-row bitwise identical to
/// `backend.scores(queries)` run cold: hits were produced by the same
/// batch-independent backend earlier, and misses are produced by it now.
/// Duplicate query nodes are solved once and the row is reused.
///
/// # Errors
/// [`RwrError::NoQueries`] on an empty slice, plus whatever the backend
/// solve over the missing nodes returns.
pub fn scores_with_cache(
    backend: &dyn ScoreBackend,
    cache: &RwrRowCache,
    queries: &[NodeId],
) -> Result<ScoreMatrix> {
    scores_with_cache_counted(backend, cache, queries).map(|(m, _)| m)
}

/// Per-call cache outcome from [`scores_with_cache_counted`]: how many of
/// one request's **distinct** query nodes were served from the cache and
/// how many had to be solved. Duplicated query nodes count once.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheLookups {
    /// Distinct query nodes served from the cache.
    pub hits: u64,
    /// Distinct query nodes batched through the backend solve.
    pub misses: u64,
}

/// [`scores_with_cache`] plus this call's own [`CacheLookups`].
///
/// The cache's global [`CacheStats`] aggregate across all callers, which
/// makes them useless for attributing warmth to a single request in a
/// concurrent stream; per-request tracing wants the local tally.
///
/// # Errors
/// Same contract as [`scores_with_cache`].
pub fn scores_with_cache_counted(
    backend: &dyn ScoreBackend,
    cache: &RwrRowCache,
    queries: &[NodeId],
) -> Result<(ScoreMatrix, CacheLookups)> {
    if queries.is_empty() {
        return Err(RwrError::NoQueries);
    }
    let _span = ceps_obs::span("rwr.scores_with_cache");
    let n = backend.node_count();

    // Probe every query once; collect the distinct misses in first-seen order.
    let mut resolved: HashMap<u32, Arc<Vec<f64>>> = HashMap::with_capacity(queries.len());
    let mut missing: Vec<NodeId> = Vec::new();
    for &q in queries {
        if resolved.contains_key(&q.0) || missing.contains(&q) {
            continue;
        }
        match cache.get(q, n) {
            Some(row) => {
                resolved.insert(q.0, row);
            }
            None => missing.push(q),
        }
    }

    let lookups = CacheLookups {
        hits: resolved.len() as u64,
        misses: missing.len() as u64,
    };

    if !missing.is_empty() {
        let solved = backend.scores(&missing)?;
        for (i, &q) in missing.iter().enumerate() {
            let row = Arc::new(solved.row(i).to_vec());
            cache.insert(q, Arc::clone(&row));
            resolved.insert(q.0, row);
        }
    }

    let rows: Vec<Vec<f64>> = queries
        .iter()
        .map(|q| resolved[&q.0].as_ref().clone())
        .collect();
    ScoreMatrix::new(queries.to_vec(), rows).map(|m| (m, lookups))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::IterativeScores;
    use crate::RwrConfig;
    use ceps_graph::{normalize::Normalization, GraphBuilder, Transition};

    fn backend(n: u32) -> IterativeScores {
        let mut b = GraphBuilder::new();
        for v in 0..n {
            b.add_edge(NodeId(v), NodeId((v + 1) % n), 1.0 + f64::from(v))
                .unwrap();
            b.add_edge(NodeId(v), NodeId((v + 3) % n), 0.5).unwrap();
        }
        let g = b.build().unwrap();
        let t = Arc::new(Transition::new(&g, Normalization::ColumnStochastic));
        IterativeScores::new(
            t,
            RwrConfig {
                threads: 1,
                tolerance: Some(1e-10),
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn hit_returns_the_inserted_row() {
        let cache = RwrRowCache::new(1 << 20);
        let row = Arc::new(vec![1.0, 2.0, 3.0]);
        cache.insert(NodeId(7), Arc::clone(&row));
        let got = cache.get(NodeId(7), 3).unwrap();
        assert!(Arc::ptr_eq(&got, &row));
        // Wrong expected length is a defended miss, not a stale hit.
        assert!(cache.get(NodeId(7), 4).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_the_coldest_row_within_budget() {
        // One shard; room for exactly two 4-element rows.
        let cache = RwrRowCache::with_shards(2 * row_bytes(4), 1);
        let mk = |v: f64| Arc::new(vec![v; 4]);
        cache.insert(NodeId(1), mk(1.0));
        cache.insert(NodeId(2), mk(2.0));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(NodeId(1), 4).is_some());
        cache.insert(NodeId(3), mk(3.0));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(NodeId(2), 4).is_none(), "LRU row evicted");
        assert!(cache.get(NodeId(1), 4).is_some());
        assert!(cache.get(NodeId(3), 4).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.bytes() <= cache.byte_budget());
    }

    #[test]
    fn oversized_rows_are_rejected_not_thrashed() {
        let cache = RwrRowCache::with_shards(row_bytes(4), 1);
        cache.insert(NodeId(0), Arc::new(vec![0.0; 64]));
        assert!(cache.is_empty());
        assert_eq!(cache.stats().rejected, 1);
        // A zero-budget cache degrades to pass-through the same way.
        let none = RwrRowCache::new(0);
        none.insert(NodeId(0), Arc::new(vec![0.0; 1]));
        assert!(none.is_empty());
    }

    #[test]
    fn cached_scores_are_bitwise_equal_to_cold() {
        let be = backend(12);
        let cache = RwrRowCache::new(1 << 20);
        let warm = [NodeId(0), NodeId(4), NodeId(8)];
        let first = scores_with_cache(&be, &cache, &warm).unwrap();
        assert_eq!(first, be.scores(&warm).unwrap());

        // Overlapping second batch: 0 and 8 hit, 2 misses cold.
        let mixed = [NodeId(8), NodeId(2), NodeId(0)];
        let second = scores_with_cache(&be, &cache, &mixed).unwrap();
        assert_eq!(second, be.scores(&mixed).unwrap());
        let s = cache.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 4);
    }

    #[test]
    fn duplicate_queries_solve_once_and_repeat_rows() {
        let be = backend(8);
        let cache = RwrRowCache::new(1 << 20);
        let queries = [NodeId(3), NodeId(3), NodeId(5), NodeId(3)];
        let m = scores_with_cache(&be, &cache, &queries).unwrap();
        assert_eq!(m.query_count(), 4);
        assert_eq!(m.row(0), m.row(1));
        assert_eq!(m.row(0), m.row(3));
        assert_eq!(m, be.scores(&queries).unwrap());
        // Only the two distinct nodes were solved and inserted.
        assert_eq!(cache.stats().insertions, 2);
    }

    #[test]
    fn thrashing_budget_still_matches_cold() {
        let be = backend(16);
        // Budget fits a single 16-node row: every batch evicts the last.
        let cache = RwrRowCache::with_shards(row_bytes(16), 1);
        for round in 0..4u32 {
            let queries = [NodeId(round), NodeId((round + 5) % 16)];
            let m = scores_with_cache(&be, &cache, &queries).unwrap();
            assert_eq!(m, be.scores(&queries).unwrap());
        }
        assert!(cache.stats().evictions > 0, "budget was supposed to thrash");
        assert!(cache.bytes() <= cache.byte_budget());
    }

    #[test]
    fn counted_variant_reports_this_calls_lookups_only() {
        let be = backend(12);
        let cache = RwrRowCache::new(1 << 20);
        let (_, first) = scores_with_cache_counted(&be, &cache, &[NodeId(0), NodeId(4)]).unwrap();
        assert_eq!(first, CacheLookups { hits: 0, misses: 2 });
        // Second request: one warm node, one cold, one duplicate (counted
        // once) — the local tally ignores the first call's traffic.
        let (m, second) =
            scores_with_cache_counted(&be, &cache, &[NodeId(4), NodeId(7), NodeId(4)]).unwrap();
        assert_eq!(second, CacheLookups { hits: 1, misses: 1 });
        assert_eq!(m.query_count(), 3);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 3), "global stats keep aggregating");
    }

    #[test]
    fn empty_query_slice_is_rejected() {
        let be = backend(4);
        let cache = RwrRowCache::new(1 << 16);
        assert!(matches!(
            scores_with_cache(&be, &cache, &[]),
            Err(RwrError::NoQueries)
        ));
    }
}
