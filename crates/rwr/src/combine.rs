//! Combining individual scores into query-set scores (Sec. 4.2).
//!
//! Model the `Q` particles as independent; particle `i` is at node `j` with
//! probability `r(i, j)`. Then:
//!
//! * **AND** (Eq. 6): all particles meet at `j` — `∏ᵢ r(i, j)`;
//! * **OR** (Eq. 7): at least one is at `j` — `1 − ∏ᵢ (1 − r(i, j))`;
//! * **K_softAND** (Eqs. 8–9): at least `k` of the `Q` are at `j`.
//!
//! The paper computes K_softAND with the recursion of Eq. 9 to avoid the
//! `O(2^Q)` enumeration. [`at_least_k`] implements the same quantity as a
//! Poisson-binomial tail: a DP over the particles maintaining
//! `P(exactly t particles present)`, `O(Q²)` time and `O(Q)` space per node.
//! `and` and `or` are the `k = Q` and `k = 1` specializations — identities
//! the unit and property tests pin down.

use crate::{Result, RwrError, ScoreMatrix};

/// `P(at least k of the events with probabilities `probs` occur)`,
/// events independent.
///
/// This is `r(Q, j, k)` of Eq. 8 when `probs` is the column `r(·, j)`.
/// Returns 0.0 if `k > probs.len()`; 1.0 if `k == 0`.
///
/// ```
/// use ceps_rwr::combine::{and, at_least_k, or};
///
/// let p = [0.5, 0.5, 0.5];
/// assert!((at_least_k(&p, 3) - and(&p)).abs() < 1e-12);   // AND = Q_softAND
/// assert!((at_least_k(&p, 1) - or(&p)).abs() < 1e-12);    // OR = 1_softAND
/// assert!((at_least_k(&p, 2) - 0.5).abs() < 1e-12);       // majority of 3 coins
/// ```
pub fn at_least_k(probs: &[f64], k: usize) -> f64 {
    let q = probs.len();
    if k == 0 {
        return 1.0;
    }
    if k > q {
        return 0.0;
    }
    // dp[t] = P(exactly t of the particles seen so far are present).
    // Only counts up to k matter: everything >= k can be pooled once
    // reached, but keeping the full vector up to k keeps the code simple
    // and Q is tiny (<= 5 in the paper's experiments).
    let mut dp = vec![0f64; k + 1];
    dp[0] = 1.0;
    for &p in probs {
        // Walk downwards so each particle is counted once.
        let top = k.min(q);
        for t in (1..=top).rev() {
            dp[t] = dp[t] * (1.0 - p) + dp[t - 1] * p;
        }
        dp[0] *= 1.0 - p;
    }
    // dp[k] after pooling: because we capped the vector at k, state k
    // absorbed "k or more" transitions? No — the cap loses mass. Compute
    // instead with the complement: P(at least k) = 1 - P(at most k-1).
    1.0 - dp[..k].iter().sum::<f64>()
}

/// Eq. 6 — `AND` score `∏ r(i, j)` for one node's column of probabilities.
pub fn and(probs: &[f64]) -> f64 {
    probs.iter().product()
}

/// Eq. 7 — `OR` score `1 − ∏ (1 − r(i, j))`.
pub fn or(probs: &[f64]) -> f64 {
    1.0 - probs.iter().map(|p| 1.0 - p).product::<f64>()
}

/// Combined scores for every node, for "at least k of Q", given the score
/// rows `r(i, ·)` directly. Writes into `out` (length N).
///
/// This is the row-sweeping formulation of [`combine_scores`]: instead of
/// gathering a `Q`-length probability column per node (a strided read plus
/// a buffer write for all `N` nodes), each score row is streamed once and
/// folded into per-node accumulators — AND keeps a running product, OR a
/// running miss-product, and K_softAND maintains the Eq. 9 Poisson-binomial
/// DP as `k + 1` vectors of length `N` updated row by row. Per node the
/// arithmetic sequence is identical to [`and`]/[`or`]/[`at_least_k`] on the
/// gathered column, so results match exactly.
///
/// Taking rows as slices (rather than a [`ScoreMatrix`]) lets callers such
/// as auto-k's leave-one-out combine any subset of an already-solved
/// matrix's rows without copying them.
///
/// # Errors
/// [`RwrError::BadSoftAndK`] unless `1 ≤ k ≤ rows.len()`.
///
/// # Panics
/// Panics if any row's length differs from `out.len()`.
pub fn combine_rows(rows: &[&[f64]], k: usize, out: &mut [f64]) -> Result<()> {
    let q = rows.len();
    if k == 0 || k > q {
        return Err(RwrError::BadSoftAndK { k, query_count: q });
    }
    let n = out.len();
    assert!(
        rows.iter().all(|r| r.len() == n),
        "all rows must match the output length"
    );

    if k == q {
        // AND (Eq. 6): running product across rows.
        out.copy_from_slice(rows[0]);
        for row in &rows[1..] {
            for (acc, &p) in out.iter_mut().zip(*row) {
                *acc *= p;
            }
        }
    } else if k == 1 {
        // OR (Eq. 7): running product of misses, complemented at the end.
        out.fill(1.0);
        for row in rows {
            for (acc, &p) in out.iter_mut().zip(*row) {
                *acc *= 1.0 - p;
            }
        }
        for acc in out.iter_mut() {
            *acc = 1.0 - *acc;
        }
    } else {
        // K_softAND: dp[t * n + j] = P(exactly t of the rows seen so far
        // are present at node j); one (k + 1) x N scratch block replaces
        // the per-node DP vector.
        let mut dp = vec![0f64; (k + 1) * n];
        dp[..n].fill(1.0);
        for row in rows {
            for t in (1..=k).rev() {
                let (lo, hi) = dp.split_at_mut(t * n);
                let prev = &lo[(t - 1) * n..];
                for j in 0..n {
                    let p = row[j];
                    hi[j] = hi[j] * (1.0 - p) + prev[j] * p;
                }
            }
            for (slot, &p) in dp[..n].iter_mut().zip(*row) {
                *slot *= 1.0 - p;
            }
        }
        // P(at least k) = 1 - P(at most k - 1). Sum the tail first and
        // subtract once, in the same association `at_least_k` uses, so the
        // two paths agree to the last bit.
        out.fill(0.0);
        for t in 0..k {
            for (acc, &mass) in out.iter_mut().zip(&dp[t * n..(t + 1) * n]) {
                *acc += mass;
            }
        }
        for acc in out.iter_mut() {
            *acc = 1.0 - *acc;
        }
    }
    Ok(())
}

/// Combined scores `r(Q, ·)` for every node, for "at least k of Q".
///
/// # Errors
/// [`RwrError::BadSoftAndK`] unless `1 ≤ k ≤ Q`.
pub fn combine_scores(scores: &ScoreMatrix, k: usize) -> Result<Vec<f64>> {
    let rows: Vec<&[f64]> = (0..scores.query_count()).map(|i| scores.row(i)).collect();
    let mut out = vec![0f64; scores.node_count()];
    combine_rows(&rows, k, &mut out)?;
    Ok(out)
}

/// Brute-force `P(at least k)` by enumerating all `2^Q` outcomes — the
/// exponential computation Eq. 9 exists to avoid. Exposed for tests and
/// benchmarks only.
pub fn at_least_k_bruteforce(probs: &[f64], k: usize) -> f64 {
    let q = probs.len();
    assert!(q <= 20, "brute force limited to small Q");
    let mut total = 0.0;
    for mask in 0u32..(1 << q) {
        if (mask.count_ones() as usize) < k {
            continue;
        }
        let mut p = 1.0;
        for (i, &pi) in probs.iter().enumerate() {
            p *= if mask & (1 << i) != 0 { pi } else { 1.0 - pi };
        }
        total += p;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceps_graph::NodeId;

    const EPS: f64 = 1e-12;

    #[test]
    fn k_edge_cases() {
        let p = [0.3, 0.5, 0.2];
        assert_eq!(at_least_k(&p, 0), 1.0);
        assert_eq!(at_least_k(&p, 4), 0.0);
    }

    #[test]
    fn and_is_q_soft_and() {
        let p = [0.3, 0.5, 0.2, 0.9];
        assert!((at_least_k(&p, 4) - and(&p)).abs() < EPS);
    }

    #[test]
    fn or_is_one_soft_and() {
        let p = [0.3, 0.5, 0.2, 0.9];
        assert!((at_least_k(&p, 1) - or(&p)).abs() < EPS);
    }

    #[test]
    fn matches_bruteforce_for_all_k() {
        let p = [0.13, 0.42, 0.9, 0.05, 0.66];
        for k in 0..=6 {
            let fast = at_least_k(&p, k);
            let slow = at_least_k_bruteforce(&p, k);
            assert!((fast - slow).abs() < EPS, "k={k}: {fast} vs {slow}");
        }
    }

    #[test]
    fn monotone_decreasing_in_k() {
        let p = [0.2, 0.7, 0.4, 0.55];
        for k in 1..p.len() {
            assert!(at_least_k(&p, k) >= at_least_k(&p, k + 1) - EPS);
        }
    }

    #[test]
    fn certain_and_impossible_events() {
        assert!((at_least_k(&[1.0, 1.0, 0.0], 2) - 1.0).abs() < EPS);
        assert!((at_least_k(&[1.0, 1.0, 0.0], 3)).abs() < EPS);
        assert!((at_least_k(&[0.0, 0.0], 1)).abs() < EPS);
    }

    #[test]
    fn combine_scores_validates_k_and_matches_pointwise() {
        let m = ScoreMatrix::new(
            vec![NodeId(0), NodeId(1), NodeId(2)],
            vec![
                vec![0.5, 0.2, 0.3],
                vec![0.1, 0.6, 0.3],
                vec![0.25, 0.25, 0.5],
            ],
        )
        .unwrap();
        assert!(matches!(
            combine_scores(&m, 0),
            Err(RwrError::BadSoftAndK { .. })
        ));
        assert!(matches!(
            combine_scores(&m, 4),
            Err(RwrError::BadSoftAndK { .. })
        ));
        let c2 = combine_scores(&m, 2).unwrap();
        for j in 0..3 {
            let col = m.column(NodeId(j as u32));
            assert!((c2[j] - at_least_k_bruteforce(&col, 2)).abs() < EPS);
        }
    }

    #[test]
    fn and_column_identity_on_matrix() {
        let m = ScoreMatrix::new(
            vec![NodeId(0), NodeId(1)],
            vec![vec![0.5, 0.5], vec![0.4, 0.6]],
        )
        .unwrap();
        let c = combine_scores(&m, 2).unwrap();
        assert!((c[0] - 0.2).abs() < EPS);
        assert!((c[1] - 0.3).abs() < EPS);
    }
}
