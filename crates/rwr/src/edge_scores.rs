//! Edge goodness scores (Eqs. 15–18).
//!
//! The `ERatio` evaluation metric (Eq. 14) needs, for every edge `(j, l)`,
//! the probability that the edge is "traversed simultaneously" by all (or at
//! least `k`) of the `Q` particles. The paper builds it in two steps:
//!
//! * Per query (Eq. 15):
//!   `r(i, (j, l)) = ½ · (r(i, j) · W̃[l, j] + r(i, l) · W̃[j, l])` —
//!   the stationary flow of particle `i` across the edge, averaged over the
//!   two directions.
//! * Combination across queries (Eqs. 16–18): exactly the node-score
//!   combinators applied to the per-query edge scores.

use ceps_graph::{CsrGraph, NodeId, Transition};

use crate::combine::{and, at_least_k, or};
use crate::{Result, RwrError, ScoreMatrix};

/// Computes per-edge goodness scores for a fixed score matrix and operator.
///
/// Borrows both: the engine of a CePS run already owns them.
#[derive(Debug, Clone, Copy)]
pub struct EdgeScores<'a> {
    scores: &'a ScoreMatrix,
    transition: &'a Transition,
}

impl<'a> EdgeScores<'a> {
    /// Creates the scorer.
    ///
    /// # Panics
    /// Panics if the matrix and operator disagree on the node count.
    pub fn new(scores: &'a ScoreMatrix, transition: &'a Transition) -> Self {
        assert_eq!(
            scores.node_count(),
            transition.node_count(),
            "score matrix and transition must cover the same graph"
        );
        EdgeScores { scores, transition }
    }

    /// Eq. 15 — goodness of edge `(j, l)` wrt the `i`-th query.
    ///
    /// Returns 0.0 if `(j, l)` is not an edge of the underlying operator.
    pub fn individual(&self, i: usize, j: NodeId, l: NodeId) -> f64 {
        let w_lj = self.transition.coeff(l, j).unwrap_or(0.0);
        let w_jl = self.transition.coeff(j, l).unwrap_or(0.0);
        0.5 * (self.scores.score(i, j) * w_lj + self.scores.score(i, l) * w_jl)
    }

    /// Per-query scores of edge `(j, l)` gathered into a buffer of length `Q`.
    pub fn individual_all(&self, j: NodeId, l: NodeId, buf: &mut Vec<f64>) {
        buf.clear();
        let w_lj = self.transition.coeff(l, j).unwrap_or(0.0);
        let w_jl = self.transition.coeff(j, l).unwrap_or(0.0);
        for i in 0..self.scores.query_count() {
            buf.push(0.5 * (self.scores.score(i, j) * w_lj + self.scores.score(i, l) * w_jl));
        }
    }

    /// Eqs. 16–18 — combined goodness `r(Q, (j, l), k)` of one edge.
    ///
    /// # Errors
    /// [`RwrError::BadSoftAndK`] unless `1 ≤ k ≤ Q`.
    pub fn combined(&self, k: usize, j: NodeId, l: NodeId) -> Result<f64> {
        let q = self.scores.query_count();
        if k == 0 || k > q {
            return Err(RwrError::BadSoftAndK { k, query_count: q });
        }
        let mut buf = Vec::with_capacity(q);
        self.individual_all(j, l, &mut buf);
        Ok(Self::combine_buf(&buf, k, q))
    }

    #[inline]
    fn combine_buf(buf: &[f64], k: usize, q: usize) -> f64 {
        if k == q {
            and(buf)
        } else if k == 1 {
            or(buf)
        } else {
            at_least_k(buf, k)
        }
    }

    /// Sum of `r(Q, (j, l), k)` over **all** edges of `graph` — the
    /// denominator of `ERatio` (Eq. 14).
    ///
    /// # Errors
    /// [`RwrError::BadSoftAndK`] unless `1 ≤ k ≤ Q`.
    pub fn total_combined(&self, graph: &CsrGraph, k: usize) -> Result<f64> {
        let q = self.scores.query_count();
        if k == 0 || k > q {
            return Err(RwrError::BadSoftAndK { k, query_count: q });
        }
        let mut buf = Vec::with_capacity(q);
        let mut total = 0.0;
        for (j, l, _) in graph.edges() {
            self.individual_all(j, l, &mut buf);
            total += Self::combine_buf(&buf, k, q);
        }
        Ok(total)
    }

    /// Sum of `r(Q, (j, l), k)` over a caller-supplied edge list — the
    /// numerator of `ERatio` for an extracted subgraph.
    ///
    /// # Errors
    /// [`RwrError::BadSoftAndK`] unless `1 ≤ k ≤ Q`.
    pub fn sum_combined<I>(&self, edges: I, k: usize) -> Result<f64>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let q = self.scores.query_count();
        if k == 0 || k > q {
            return Err(RwrError::BadSoftAndK { k, query_count: q });
        }
        let mut buf = Vec::with_capacity(q);
        let mut total = 0.0;
        for (j, l) in edges {
            self.individual_all(j, l, &mut buf);
            total += Self::combine_buf(&buf, k, q);
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RwrConfig, RwrEngine};
    use ceps_graph::{normalize::Normalization, GraphBuilder};

    fn setup() -> (CsrGraph, Transition) {
        let mut b = GraphBuilder::new();
        for (x, y, w) in [(0, 1, 1.0), (1, 2, 2.0), (2, 0, 1.0), (2, 3, 1.0)] {
            b.add_edge(NodeId(x), NodeId(y), w).unwrap();
        }
        let g = b.build().unwrap();
        let t = Transition::new(&g, Normalization::ColumnStochastic);
        (g, t)
    }

    #[test]
    fn individual_matches_hand_computation() {
        let (_, t) = setup();
        let m = ScoreMatrix::new(vec![NodeId(0)], vec![vec![0.4, 0.3, 0.2, 0.1]]).unwrap();
        let es = EdgeScores::new(&m, &t);
        // Edge (0, 1): W̃[1,0] = w(0,1)/d_0 = 1/2; W̃[0,1] = 1/3.
        let want = 0.5 * (0.4 * 0.5 + 0.3 * (1.0 / 3.0));
        assert!((es.individual(0, NodeId(0), NodeId(1)) - want).abs() < 1e-12);
        // Symmetric in argument order by construction.
        assert!(
            (es.individual(0, NodeId(0), NodeId(1)) - es.individual(0, NodeId(1), NodeId(0))).abs()
                < 1e-12
        );
    }

    #[test]
    fn non_edges_score_zero() {
        let (_, t) = setup();
        let m = ScoreMatrix::new(vec![NodeId(0)], vec![vec![0.4, 0.3, 0.2, 0.1]]).unwrap();
        let es = EdgeScores::new(&m, &t);
        assert_eq!(es.individual(0, NodeId(0), NodeId(3)), 0.0);
    }

    #[test]
    fn combined_specializations_agree() {
        let (g, t) = setup();
        let engine = RwrEngine::new(&t, RwrConfig::default()).unwrap();
        let m = engine.solve_many(&[NodeId(0), NodeId(3)]).unwrap();
        let es = EdgeScores::new(&m, &t);
        for (j, l, _) in g.edges() {
            let p0 = es.individual(0, j, l);
            let p1 = es.individual(1, j, l);
            let and2 = es.combined(2, j, l).unwrap();
            let or1 = es.combined(1, j, l).unwrap();
            assert!((and2 - p0 * p1).abs() < 1e-12);
            assert!((or1 - (1.0 - (1.0 - p0) * (1.0 - p1))).abs() < 1e-12);
        }
        assert!(es.combined(0, NodeId(0), NodeId(1)).is_err());
        assert!(es.combined(3, NodeId(0), NodeId(1)).is_err());
    }

    #[test]
    fn totals_decompose_over_edges() {
        let (g, t) = setup();
        let engine = RwrEngine::new(&t, RwrConfig::default()).unwrap();
        let m = engine.solve_many(&[NodeId(0), NodeId(3)]).unwrap();
        let es = EdgeScores::new(&m, &t);
        let total = es.total_combined(&g, 2).unwrap();
        let manual: f64 = g
            .edges()
            .map(|(j, l, _)| es.combined(2, j, l).unwrap())
            .sum();
        assert!((total - manual).abs() < 1e-12);
        let partial = es
            .sum_combined(vec![(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))], 2)
            .unwrap();
        assert!(partial <= total + 1e-12);
    }
}
