//! Typed errors for the RWR engine.

use std::fmt;

use ceps_graph::{GraphError, NodeId};

/// Errors produced by `ceps-rwr`.
#[derive(Debug)]
#[non_exhaustive]
pub enum RwrError {
    /// The restart parameter `c` was outside the open interval `(0, 1)`.
    ///
    /// `c = 0` degenerates to "never walk" and `c = 1` to "never restart",
    /// both of which break the contraction argument behind Eq. 12.
    InvalidRestart {
        /// The rejected value.
        c: f64,
    },
    /// A query node id was outside the graph.
    BadQueryNode {
        /// The offending id.
        node: NodeId,
        /// Number of nodes in the graph.
        node_count: usize,
    },
    /// The query set was empty.
    NoQueries,
    /// A `K_softAND` coefficient `k` was outside `1..=Q`.
    BadSoftAndK {
        /// The rejected coefficient.
        k: usize,
        /// Number of queries.
        query_count: usize,
    },
    /// The graph exceeds the size cap of a dense precomputed operator
    /// (the "heavy burden when N is big" of Sec. 6).
    GraphTooLarge {
        /// Nodes in the graph.
        nodes: usize,
        /// The configured cap.
        max_nodes: usize,
    },
    /// An underlying graph error.
    Graph(GraphError),
}

impl fmt::Display for RwrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RwrError::InvalidRestart { c } => {
                write!(
                    f,
                    "restart coefficient c = {c} must lie strictly between 0 and 1"
                )
            }
            RwrError::BadQueryNode { node, node_count } => {
                write!(
                    f,
                    "query node {node} out of bounds for graph with {node_count} nodes"
                )
            }
            RwrError::NoQueries => write!(f, "query set is empty"),
            RwrError::BadSoftAndK { k, query_count } => {
                write!(
                    f,
                    "K_softAND coefficient k = {k} must lie in 1..={query_count}"
                )
            }
            RwrError::GraphTooLarge { nodes, max_nodes } => {
                write!(
                    f,
                    "graph with {nodes} nodes exceeds the dense-precompute cap of {max_nodes}"
                )
            }
            RwrError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for RwrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RwrError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for RwrError {
    fn from(e: GraphError) -> Self {
        RwrError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_bad_value() {
        assert!(RwrError::InvalidRestart { c: 1.5 }
            .to_string()
            .contains("1.5"));
        assert!(RwrError::BadSoftAndK {
            k: 9,
            query_count: 3
        }
        .to_string()
        .contains("1..=3"));
    }
}
