//! Dense closed-form solver for Eq. 12 — the test oracle.
//!
//! `R^T = (1 − c)(I − c W̃)⁻¹ E` solved by Gaussian elimination with partial
//! pivoting. This is `O(N³)` and meant for graphs of at most a few thousand
//! nodes: its job is to certify the power-iteration solver in unit and
//! property tests, and to quantify the truncation error of `m = 50`
//! iterations (the paper's setting) in the benchmark harness.

use ceps_graph::{NodeId, Transition};

use crate::{Result, RwrError, ScoreMatrix};

/// Solves `(I − c·M) x = (1 − c) e_q` exactly for each query.
///
/// # Errors
/// [`RwrError::InvalidRestart`] unless `0 < c < 1`; [`RwrError::NoQueries`]
/// or [`RwrError::BadQueryNode`] for bad query sets.
///
/// # Panics
/// Panics if the system is numerically singular, which cannot happen for a
/// (sub)stochastic `M` and `0 < c < 1`.
pub fn solve_exact(transition: &Transition, c: f64, queries: &[NodeId]) -> Result<ScoreMatrix> {
    if !(c > 0.0 && c < 1.0) {
        return Err(RwrError::InvalidRestart { c });
    }
    if queries.is_empty() {
        return Err(RwrError::NoQueries);
    }
    let n = transition.node_count();
    for &q in queries {
        if q.index() >= n {
            return Err(RwrError::BadQueryNode {
                node: q,
                node_count: n,
            });
        }
    }

    // A = I − c·M, dense row-major.
    let dense = transition.to_dense();
    let mut a = vec![0f64; n * n];
    for (i, row) in dense.iter().enumerate() {
        for (j, &m) in row.iter().enumerate() {
            a[i * n + j] = if i == j { 1.0 - c * m } else { -c * m };
        }
    }

    let lu = LuFactors::factor(a, n);
    let rows = queries
        .iter()
        .map(|&q| {
            let mut b = vec![0f64; n];
            b[q.index()] = 1.0 - c;
            lu.solve_in_place(&mut b);
            b
        })
        .collect();
    ScoreMatrix::new(queries.to_vec(), rows)
}

/// LU factorization with partial pivoting, reused across right-hand sides.
#[derive(Debug)]
pub(crate) struct LuFactors {
    lu: Vec<f64>,
    pivots: Vec<usize>,
    n: usize,
}

impl LuFactors {
    pub(crate) fn factor(mut a: Vec<f64>, n: usize) -> Self {
        let mut pivots = vec![0usize; n];
        for k in 0..n {
            // Partial pivot: largest |a[i][k]| for i >= k.
            let mut p = k;
            let mut best = a[k * n + k].abs();
            for i in (k + 1)..n {
                let v = a[i * n + k].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            assert!(best > 0.0, "singular system in exact RWR solve");
            pivots[k] = p;
            if p != k {
                for j in 0..n {
                    a.swap(k * n + j, p * n + j);
                }
            }
            let pivot = a[k * n + k];
            for i in (k + 1)..n {
                let factor = a[i * n + k] / pivot;
                a[i * n + k] = factor;
                if factor != 0.0 {
                    for j in (k + 1)..n {
                        a[i * n + j] -= factor * a[k * n + j];
                    }
                }
            }
        }
        LuFactors { lu: a, pivots, n }
    }

    pub(crate) fn solve_in_place(&self, b: &mut [f64]) {
        let n = self.n;
        // Apply row swaps.
        for k in 0..n {
            let p = self.pivots[k];
            if p != k {
                b.swap(k, p);
            }
        }
        // Forward substitution (L has implicit unit diagonal).
        for i in 1..n {
            let mut s = b[i];
            for j in 0..i {
                s -= self.lu[i * n + j] * b[j];
            }
            b[i] = s;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut s = b[i];
            for j in (i + 1)..n {
                s -= self.lu[i * n + j] * b[j];
            }
            b[i] = s / self.lu[i * n + i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RwrConfig, RwrEngine};
    use ceps_graph::{normalize::Normalization, GraphBuilder};

    fn small_graph() -> Transition {
        let mut b = GraphBuilder::new();
        for (x, y, w) in [
            (0, 1, 1.0),
            (1, 2, 2.0),
            (2, 3, 1.0),
            (3, 4, 3.0),
            (4, 0, 1.0),
            (1, 3, 0.5),
        ] {
            b.add_edge(NodeId(x), NodeId(y), w).unwrap();
        }
        let g = b.build().unwrap();
        Transition::new(&g, Normalization::DegreePenalized { alpha: 0.5 })
    }

    #[test]
    fn exact_solution_satisfies_fixed_point() {
        let t = small_graph();
        let c = 0.5;
        let m = solve_exact(&t, c, &[NodeId(0)]).unwrap();
        let r = m.row(0);
        let mut mx = vec![0f64; r.len()];
        t.apply(r, &mut mx);
        for j in 0..r.len() {
            let rhs = c * mx[j] + if j == 0 { 1.0 - c } else { 0.0 };
            assert!((r[j] - rhs).abs() < 1e-12, "fixed point violated at {j}");
        }
    }

    #[test]
    fn exact_distribution_is_probability() {
        let t = small_graph();
        let m = solve_exact(&t, 0.5, &[NodeId(2)]).unwrap();
        let r = m.row(0);
        assert!(r.iter().all(|&v| v >= -1e-15));
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-10, "sum {sum}");
    }

    #[test]
    fn power_iteration_converges_to_exact() {
        let t = small_graph();
        let exact = solve_exact(&t, 0.5, &[NodeId(1)]).unwrap();
        let cfg = RwrConfig {
            max_iterations: 200,
            ..Default::default()
        };
        let approx = RwrEngine::new(&t, cfg)
            .unwrap()
            .solve_many(&[NodeId(1)])
            .unwrap();
        for j in 0..exact.node_count() {
            let d = (exact.row(0)[j] - approx.row(0)[j]).abs();
            assert!(d < 1e-10, "node {j}: diff {d}");
        }
    }

    #[test]
    fn fifty_iterations_is_close_like_the_paper_says() {
        // Sec. 7 fixes m = 50; on a small graph the truncation error at
        // c = 0.5 is bounded by roughly c^m and should be negligible.
        let t = small_graph();
        let exact = solve_exact(&t, 0.5, &[NodeId(0)]).unwrap();
        let approx = RwrEngine::new(&t, RwrConfig::default())
            .unwrap()
            .solve_many(&[NodeId(0)])
            .unwrap();
        let l1: f64 = (0..exact.node_count())
            .map(|j| (exact.row(0)[j] - approx.row(0)[j]).abs())
            .sum();
        assert!(l1 < 1e-12, "L1 truncation error {l1}");
    }

    #[test]
    fn rejects_invalid_inputs() {
        let t = small_graph();
        assert!(solve_exact(&t, 0.0, &[NodeId(0)]).is_err());
        assert!(solve_exact(&t, 0.5, &[]).is_err());
        assert!(solve_exact(&t, 0.5, &[NodeId(99)]).is_err());
    }
}
