//! # ceps-rwr
//!
//! The random-walk-with-restart (RWR) machinery of the CePS paper
//! (Sec. 4): individual closeness scores, their combination into query-set
//! scores for `AND` / `OR` / `K_softAND` queries, the analogous edge scores,
//! and the appendix variants.
//!
//! ## The model
//!
//! A particle starts at query node `q_i`, repeatedly steps to a neighbor with
//! probability proportional to (normalized) edge weight, and at every step
//! flies back to `q_i` with probability `1 − c`. Its stationary distribution
//! `r(i, ·)` solves
//!
//! ```text
//! r = c · W̃ r + (1 − c) · e_i                     (Eq. 4)
//! r = (1 − c) (I − c W̃)⁻¹ e_i                    (Eq. 12, closed form)
//! ```
//!
//! [`RwrEngine`] computes `r(i, ·)` for many sources at once by power
//! iteration (the paper iterates `m = 50` times; we also support a
//! convergence tolerance), optionally in parallel across sources.
//! [`exact`] solves Eq. 12 densely and is the oracle our property tests
//! compare against.
//!
//! ## Combining scores
//!
//! With `Q` independent particles, the probability that **at least k** of
//! them are simultaneously at node `j` in the steady state is the paper's
//! *meeting probability* `r(Q, j, k)` (Eqs. 6–9) — logic `AND` for `k = Q`,
//! `OR` for `k = 1`, `K_softAND` in between. [`combine`] computes it with a
//! Poisson-binomial tail DP that is mathematically identical to the paper's
//! recursion (Eq. 9) but runs in `O(Q²)` per node with no recursion.
//! [`edge_scores`] does the same for edges (Eqs. 15–18), which the `ERatio`
//! evaluation metric needs. [`variants`] holds the appendix's
//! manifold-ranking and order-statistic alternatives (Eqs. 20–21).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod blockwise;
pub mod cache;
pub mod combine;
pub mod edge_scores;
mod error;
pub mod exact;
pub mod precomputed;
pub mod push;
mod scores;
pub mod scratch;
mod solver;
pub mod variants;

pub use backend::{IterativeScores, PushScores, ScoreBackend};
pub use cache::{
    scores_with_cache, scores_with_cache_counted, CacheLookups, CacheStats, RwrRowCache,
};
pub use error::RwrError;
pub use scores::ScoreMatrix;
pub use scratch::ScratchPool;
pub use solver::{RwrConfig, RwrEngine, SolveStats};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, RwrError>;
