//! Precomputed-inverse RWR — the paper's "obvious" speedup (Sec. 6).
//!
//! > "An obvious way to speed up CePS is to pre-compute and store the
//! > matrix `A = (I − c W̃)⁻¹`, then `R^T = (1 − c) A E` can be computed
//! > on-line nearly real-time. However, in this way, we have to store the
//! > whole `N × N` matrix A, which is a heavy burden when N is big."
//!
//! [`PrecomputedRwr`] implements exactly that trade-off: an `O(N³)` offline
//! factorization + inversion, `8·N²` bytes of storage, and then each query
//! is a single **column read** — `r(i, ·) = (1 − c) · A[·, q_i]`, `O(N)`
//! with no iteration at all. The constructor refuses graphs above a size
//! cap precisely because of the memory burden the paper calls out; Fast
//! CePS (graph pre-partitioning) is the scalable alternative.

use ceps_graph::{NodeId, Transition};

use crate::exact::LuFactors;
use crate::{Result, RwrError, ScoreMatrix};

/// A dense precomputed `(1 − c)(I − c W̃)⁻¹`, stored column-major so a
/// query is one contiguous copy.
#[derive(Debug, Clone)]
pub struct PrecomputedRwr {
    /// Column-major `n × n`: `a[q * n + j] = r(q, j)`.
    columns: Vec<f64>,
    n: usize,
    c: f64,
}

impl PrecomputedRwr {
    /// Default node-count cap (2¹² nodes ⇒ 128 MiB of f64).
    pub const DEFAULT_MAX_NODES: usize = 4096;

    /// Precomputes the full solution operator. `max_nodes` guards the
    /// `O(N²)` memory / `O(N³)` time; pass
    /// [`Self::DEFAULT_MAX_NODES`] unless you know better.
    ///
    /// # Errors
    /// [`RwrError::InvalidRestart`] for `c` outside `(0, 1)`, or
    /// [`RwrError::GraphTooLarge`] above the cap.
    pub fn new(transition: &Transition, c: f64, max_nodes: usize) -> Result<Self> {
        if !(c > 0.0 && c < 1.0) {
            return Err(RwrError::InvalidRestart { c });
        }
        let n = transition.node_count();
        if n > max_nodes {
            return Err(RwrError::GraphTooLarge {
                nodes: n,
                max_nodes,
            });
        }

        // Factor I - cM once, then back-substitute one unit vector per
        // column. (Explicit inversion via LU; the solves dominate.)
        let dense = transition.to_dense();
        let mut a = vec![0f64; n * n];
        for (i, row) in dense.iter().enumerate() {
            for (j, &m) in row.iter().enumerate() {
                a[i * n + j] = if i == j { 1.0 - c * m } else { -c * m };
            }
        }
        let lu = LuFactors::factor(a, n);

        let mut columns = vec![0f64; n * n];
        let mut rhs = vec![0f64; n];
        for q in 0..n {
            rhs.iter_mut().for_each(|x| *x = 0.0);
            rhs[q] = 1.0 - c;
            lu.solve_in_place(&mut rhs);
            columns[q * n..(q + 1) * n].copy_from_slice(&rhs);
        }
        Ok(PrecomputedRwr { columns, n, c })
    }

    /// Number of nodes covered.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The restart coefficient the operator was built for.
    pub fn restart(&self) -> f64 {
        self.c
    }

    /// Bytes of storage the dense operator occupies — the "heavy burden"
    /// the paper warns about; exposed so callers can report it.
    pub fn memory_bytes(&self) -> usize {
        self.columns.len() * std::mem::size_of::<f64>()
    }

    /// The full stationary distribution for one query: a column copy,
    /// `O(N)`.
    ///
    /// # Errors
    /// [`RwrError::BadQueryNode`] for an out-of-range query.
    pub fn query(&self, q: NodeId) -> Result<Vec<f64>> {
        if q.index() >= self.n {
            return Err(RwrError::BadQueryNode {
                node: q,
                node_count: self.n,
            });
        }
        Ok(self.columns[q.index() * self.n..(q.index() + 1) * self.n].to_vec())
    }

    /// Score matrix for a whole query set.
    ///
    /// # Errors
    /// [`RwrError::NoQueries`] / [`RwrError::BadQueryNode`].
    pub fn query_many(&self, queries: &[NodeId]) -> Result<ScoreMatrix> {
        if queries.is_empty() {
            return Err(RwrError::NoQueries);
        }
        let rows = queries
            .iter()
            .map(|&q| self.query(q))
            .collect::<Result<Vec<_>>>()?;
        ScoreMatrix::new(queries.to_vec(), rows)
    }

    /// Single entry `r(q, j)` without copying the column.
    pub fn score(&self, q: NodeId, j: NodeId) -> f64 {
        self.columns[q.index() * self.n + j.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::solve_exact;
    use ceps_graph::{normalize::Normalization, GraphBuilder};

    fn transition() -> Transition {
        let mut b = GraphBuilder::new();
        for (x, y, w) in [
            (0, 1, 1.0),
            (1, 2, 2.0),
            (2, 3, 1.5),
            (3, 0, 1.0),
            (0, 2, 0.5),
        ] {
            b.add_edge(NodeId(x), NodeId(y), w).unwrap();
        }
        let g = b.build().unwrap();
        Transition::new(&g, Normalization::DegreePenalized { alpha: 0.5 })
    }

    #[test]
    fn matches_the_exact_solver_for_every_query() {
        let t = transition();
        let pre = PrecomputedRwr::new(&t, 0.5, 100).unwrap();
        for q in 0..4u32 {
            let exact = solve_exact(&t, 0.5, &[NodeId(q)]).unwrap();
            let col = pre.query(NodeId(q)).unwrap();
            for j in 0..4 {
                assert!((exact.row(0)[j] - col[j]).abs() < 1e-12, "q={q} j={j}");
                assert!((pre.score(NodeId(q), NodeId(j as u32)) - col[j]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn query_many_builds_a_score_matrix() {
        let t = transition();
        let pre = PrecomputedRwr::new(&t, 0.5, 100).unwrap();
        let m = pre.query_many(&[NodeId(0), NodeId(3)]).unwrap();
        assert_eq!(m.query_count(), 2);
        let sums = m.row_sums();
        for s in sums {
            assert!((s - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn enforces_the_memory_cap() {
        let t = transition();
        let err = PrecomputedRwr::new(&t, 0.5, 3).unwrap_err();
        assert!(matches!(
            err,
            RwrError::GraphTooLarge {
                nodes: 4,
                max_nodes: 3
            }
        ));
    }

    #[test]
    fn validates_inputs() {
        let t = transition();
        assert!(PrecomputedRwr::new(&t, 0.0, 100).is_err());
        let pre = PrecomputedRwr::new(&t, 0.5, 100).unwrap();
        assert!(pre.query(NodeId(77)).is_err());
        assert!(pre.query_many(&[]).is_err());
        assert_eq!(pre.memory_bytes(), 4 * 4 * 8);
        assert_eq!(pre.restart(), 0.5);
        assert_eq!(pre.node_count(), 4);
    }
}
