//! Forward-push approximate RWR (Andersen–Chung–Lang style).
//!
//! The paper's Sec. 6 observes that RWR scores are "very skewed ... most
//! values of r(i, j) are near zero" and exploits it by graph partitioning.
//! Forward push exploits the same skew *algorithmically*: instead of
//! iterating a dense vector over the whole graph (Eq. 4), it maintains a
//! sparse *residual* and only touches nodes whose residual mass is still
//! worth distributing. Runtime is proportional to the pushed mass — for a
//! localized query it never visits the far side of the graph at all.
//!
//! ## Mechanics
//!
//! We want the fixed point `r = c·M r + (1 − c)·e_q` for the
//! column-stochastic operator `M`. Maintain an estimate `p` and residual
//! `m` with the invariant
//!
//! ```text
//! r = p + Σ_v m[v] · r⁽ᵛ⁾
//! ```
//!
//! where `r⁽ᵛ⁾` is the exact solution for source `v`. Start from `p = 0`,
//! `m = e_q`. A *push* at `v` settles `(1 − c)·m[v]` into `p[v]` and
//! forwards `c·m[v]` along column `v` of `M` (the walk's one-step
//! distribution out of `v`). Since each `r⁽ᵛ⁾` has L1 norm ≤ 1, the total
//! unresolved residual `‖m‖₁` bounds the L1 error of `p`, and it is
//! reported exactly in the result.

use ceps_graph::{NodeId, Transition};

use crate::{Result, RwrError};

/// Outcome of a forward-push solve.
#[derive(Debug, Clone)]
pub struct PushResult {
    /// The approximate stationary distribution (dense storage, but only
    /// locally non-zero).
    pub scores: Vec<f64>,
    /// Total residual mass left unpushed — an upper bound on the L1 error
    /// of `scores` versus the exact solution.
    pub residual_mass: f64,
    /// Number of push operations performed.
    pub pushes: usize,
    /// Number of distinct nodes that ever held residual or score.
    pub touched: usize,
}

/// Approximate single-source RWR by forward push.
///
/// `epsilon` is the push threshold: nodes are pushed while their residual
/// exceeds it. Smaller `epsilon` means a more accurate, more expensive
/// solve; the exact remaining `residual_mass` is reported so callers can
/// verify the error bound they got.
///
/// # Errors
/// [`RwrError::InvalidRestart`] for `c ∉ (0, 1)`;
/// [`RwrError::BadQueryNode`] for an out-of-range source.
///
/// # Panics
/// Panics if `epsilon <= 0`.
pub fn forward_push(
    transition: &Transition,
    c: f64,
    source: NodeId,
    epsilon: f64,
) -> Result<PushResult> {
    if !(c > 0.0 && c < 1.0) {
        return Err(RwrError::InvalidRestart { c });
    }
    let n = transition.node_count();
    if source.index() >= n {
        return Err(RwrError::BadQueryNode {
            node: source,
            node_count: n,
        });
    }
    assert!(epsilon > 0.0, "push threshold must be positive");

    let mut p = vec![0f64; n];
    let mut m = vec![0f64; n];
    let mut seen = vec![false; n];
    m[source.index()] = 1.0;
    seen[source.index()] = true;
    let mut touched = 1usize;

    let mut queue: Vec<u32> = vec![source.0];
    let mut queued = vec![false; n];
    queued[source.index()] = true;
    let mut pushes = 0usize;

    while let Some(v) = queue.pop() {
        queued[v as usize] = false;
        let mass = m[v as usize];
        if mass < epsilon {
            continue; // fell below threshold since being queued
        }
        m[v as usize] = 0.0;
        p[v as usize] += (1.0 - c) * mass;
        pushes += 1;

        // Forward c·mass along column v (the walk's step distribution).
        // For an isolated node the column is empty and the walk mass is
        // simply absorbed, mirroring the power iteration's behavior.
        for (u, coeff) in transition.column_entries(NodeId(v)) {
            if coeff == 0.0 {
                continue;
            }
            let add = c * mass * coeff;
            let slot = &mut m[u.index()];
            *slot += add;
            if !seen[u.index()] {
                seen[u.index()] = true;
                touched += 1;
            }
            if *slot >= epsilon && !queued[u.index()] {
                queued[u.index()] = true;
                queue.push(u.0);
            }
        }
    }

    Ok(PushResult {
        scores: p,
        residual_mass: m.iter().sum(),
        pushes,
        touched,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::solve_exact;
    use ceps_graph::{normalize::Normalization, GraphBuilder};

    fn ring_with_chords(n: u32) -> Transition {
        let mut b = GraphBuilder::new();
        for i in 0..n {
            b.add_edge(NodeId(i), NodeId((i + 1) % n), 1.0).unwrap();
            if i % 3 == 0 {
                b.add_edge(NodeId(i), NodeId((i + n / 2) % n), 0.5).unwrap();
            }
        }
        let g = b.build().unwrap();
        Transition::new(&g, Normalization::DegreePenalized { alpha: 0.5 })
    }

    #[test]
    fn converges_to_exact_as_epsilon_shrinks() {
        let t = ring_with_chords(24);
        let exact = solve_exact(&t, 0.5, &[NodeId(0)]).unwrap();
        let mut last_err = f64::INFINITY;
        for eps in [1e-2, 1e-4, 1e-6, 1e-9] {
            let push = forward_push(&t, 0.5, NodeId(0), eps).unwrap();
            let l1: f64 = (0..24)
                .map(|j| (exact.row(0)[j] - push.scores[j]).abs())
                .sum();
            assert!(l1 <= push.residual_mass + 1e-12, "error {l1} exceeds bound");
            assert!(l1 <= last_err + 1e-12, "error grew: {last_err} -> {l1}");
            last_err = l1;
        }
        assert!(last_err < 1e-7, "final error {last_err}");
    }

    #[test]
    fn residual_bound_is_honest() {
        let t = ring_with_chords(30);
        let exact = solve_exact(&t, 0.3, &[NodeId(5)]).unwrap();
        let push = forward_push(&t, 0.3, NodeId(5), 1e-3).unwrap();
        let l1: f64 = (0..30)
            .map(|j| (exact.row(0)[j] - push.scores[j]).abs())
            .sum();
        assert!(l1 <= push.residual_mass + 1e-12);
        // Settled plus residual mass accounts for everything.
        let settled: f64 = push.scores.iter().sum();
        assert!((settled + push.residual_mass - 1.0).abs() < 1e-9);
    }

    #[test]
    fn locality_touches_less_than_the_whole_graph() {
        // Two far-apart communities joined by one weak bridge: a coarse
        // push from inside one community should not touch most of the other.
        let mut b = GraphBuilder::new();
        let size = 40u32;
        for base in [0, size] {
            for i in 0..size - 1 {
                b.add_edge(NodeId(base + i), NodeId(base + i + 1), 2.0)
                    .unwrap();
            }
        }
        b.add_edge(NodeId(size - 1), NodeId(size), 0.01).unwrap();
        let g = b.build().unwrap();
        let t = Transition::new(&g, Normalization::ColumnStochastic);
        let push = forward_push(&t, 0.5, NodeId(0), 1e-3).unwrap();
        assert!(
            push.touched < g.node_count(),
            "push touched the whole graph ({} nodes)",
            push.touched
        );
    }

    #[test]
    fn validates_inputs() {
        let t = ring_with_chords(6);
        assert!(forward_push(&t, 1.0, NodeId(0), 1e-3).is_err());
        assert!(forward_push(&t, 0.5, NodeId(99), 1e-3).is_err());
    }

    #[test]
    #[should_panic(expected = "push threshold")]
    fn zero_epsilon_panics() {
        let t = ring_with_chords(6);
        let _ = forward_push(&t, 0.5, NodeId(0), 0.0);
    }

    #[test]
    fn isolated_source_settles_restart_mass_only() {
        let mut b = GraphBuilder::with_nodes(3);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let g = b.build().unwrap();
        let t = Transition::new(&g, Normalization::ColumnStochastic);
        let push = forward_push(&t, 0.5, NodeId(2), 1e-9).unwrap();
        // The walk mass c is absorbed (nowhere to go); (1-c) settles at the
        // source, matching the power iteration's fixed point (1-c)·e_q.
        assert!((push.scores[2] - 0.5).abs() < 1e-12);
        assert_eq!(push.scores[0], 0.0);
    }
}
