//! The `Q × N` score matrix `R = [r(i, j)]`.

use ceps_graph::NodeId;

use crate::{Result, RwrError};

/// Individual closeness scores for a set of query nodes: row `i` holds
/// `r(i, ·)`, the RWR stationary distribution of query `q_i` (Eq. 3/4).
///
/// This is the matrix `R` of Table 2. Storage is one contiguous `Vec<f64>`
/// with row stride `node_count` — rows stay cache-adjacent for the
/// row-sweeping consumers (score combination, EXTRACT's per-source node
/// ordering, auto-k's leave-one-out), and the batched solver can write the
/// whole matrix without per-row allocations.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreMatrix {
    sources: Vec<NodeId>,
    /// `data[i * node_count + j] = r(i, j)`.
    data: Vec<f64>,
    node_count: usize,
}

impl ScoreMatrix {
    /// Assembles a matrix from per-source rows.
    ///
    /// # Errors
    /// [`RwrError::NoQueries`] if `sources` is empty.
    ///
    /// # Panics
    /// Panics if row lengths disagree or don't match `sources`.
    pub fn new(sources: Vec<NodeId>, rows: Vec<Vec<f64>>) -> Result<Self> {
        if sources.is_empty() {
            return Err(RwrError::NoQueries);
        }
        assert_eq!(sources.len(), rows.len(), "one row per source required");
        let node_count = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == node_count),
            "all rows must have equal length"
        );
        let mut data = Vec::with_capacity(sources.len() * node_count);
        for row in &rows {
            data.extend_from_slice(row);
        }
        Ok(ScoreMatrix {
            sources,
            data,
            node_count,
        })
    }

    /// Assembles a matrix directly from contiguous row-major storage
    /// (`data[i * node_count + j] = r(i, j)`), the layout the batched
    /// solver produces.
    ///
    /// # Errors
    /// [`RwrError::NoQueries`] if `sources` is empty.
    ///
    /// # Panics
    /// Panics unless `data.len() == sources.len() * node_count`.
    pub fn from_flat(sources: Vec<NodeId>, data: Vec<f64>, node_count: usize) -> Result<Self> {
        if sources.is_empty() {
            return Err(RwrError::NoQueries);
        }
        assert_eq!(
            data.len(),
            sources.len() * node_count,
            "flat data must be sources x node_count long"
        );
        Ok(ScoreMatrix {
            sources,
            data,
            node_count,
        })
    }

    /// An all-zero matrix to be filled in place via
    /// [`ScoreMatrix::row_mut`].
    ///
    /// # Errors
    /// [`RwrError::NoQueries`] if `sources` is empty.
    pub fn zeros(sources: Vec<NodeId>, node_count: usize) -> Result<Self> {
        let data = vec![0f64; sources.len() * node_count];
        Self::from_flat(sources, data, node_count)
    }

    /// Number of query nodes `Q`.
    #[inline]
    pub fn query_count(&self) -> usize {
        self.sources.len()
    }

    /// Number of nodes `N`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The query nodes, in row order.
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// `r(i, j)` — closeness of node `j` wrt the `i`-th query.
    #[inline]
    pub fn score(&self, i: usize, j: NodeId) -> f64 {
        self.data[i * self.node_count + j.index()]
    }

    /// Full row `r(i, ·)`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.node_count..(i + 1) * self.node_count]
    }

    /// Mutable row `r(i, ·)`, for writers filling a [`ScoreMatrix::zeros`]
    /// matrix in place.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.node_count..(i + 1) * self.node_count]
    }

    /// All rows as one contiguous row-major slice (stride
    /// [`ScoreMatrix::node_count`]).
    #[inline]
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// Column `r(·, j)` gathered into a small buffer (length `Q`).
    pub fn column(&self, j: NodeId) -> Vec<f64> {
        let mut buf = vec![0f64; self.query_count()];
        self.column_into(j, &mut buf);
        buf
    }

    /// Gathers column `j` into `buf` without allocating (`buf.len() == Q`).
    pub fn column_into(&self, j: NodeId, buf: &mut [f64]) {
        debug_assert_eq!(buf.len(), self.query_count());
        for (slot, row) in buf.iter_mut().zip(self.data.chunks_exact(self.node_count)) {
            *slot = row[j.index()];
        }
    }

    /// Nodes sorted by descending `r(i, ·)` — the order the EXTRACT path DP
    /// processes nodes in (Sec. 5: "we arrange the nodes in descending order
    /// of r(i, j)"). Ties break by ascending id for determinism.
    pub fn descending_order(&self, i: usize) -> Vec<NodeId> {
        let row = self.row(i);
        let mut order: Vec<u32> = (0..self.node_count as u32).collect();
        order
            .sort_unstable_by(|&a, &b| row[b as usize].total_cmp(&row[a as usize]).then(a.cmp(&b)));
        order.into_iter().map(NodeId).collect()
    }

    /// Row sums — 1.0 for exact stationary distributions over connected
    /// graphs; tests use this to check solver fidelity.
    pub fn row_sums(&self) -> Vec<f64> {
        self.data
            .chunks_exact(self.node_count)
            .map(|r| r.iter().sum())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScoreMatrix {
        ScoreMatrix::new(
            vec![NodeId(0), NodeId(3)],
            vec![vec![0.5, 0.3, 0.1, 0.1], vec![0.1, 0.2, 0.3, 0.4]],
        )
        .unwrap()
    }

    #[test]
    fn accessors() {
        let m = sample();
        assert_eq!(m.query_count(), 2);
        assert_eq!(m.node_count(), 4);
        assert_eq!(m.score(0, NodeId(1)), 0.3);
        assert_eq!(m.column(NodeId(2)), vec![0.1, 0.3]);
        let mut buf = [0.0; 2];
        m.column_into(NodeId(3), &mut buf);
        assert_eq!(buf, [0.1, 0.4]);
    }

    #[test]
    fn descending_order_breaks_ties_by_id() {
        let m = sample();
        let order = m.descending_order(0);
        assert_eq!(order, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        let order = m.descending_order(1);
        assert_eq!(order, vec![NodeId(3), NodeId(2), NodeId(1), NodeId(0)]);
    }

    #[test]
    fn empty_sources_rejected() {
        assert!(matches!(
            ScoreMatrix::new(vec![], vec![]),
            Err(RwrError::NoQueries)
        ));
        assert!(matches!(
            ScoreMatrix::from_flat(vec![], vec![], 4),
            Err(RwrError::NoQueries)
        ));
    }

    #[test]
    fn row_sums_reported() {
        let m = sample();
        let sums = m.row_sums();
        assert!((sums[0] - 1.0).abs() < 1e-12);
        assert!((sums[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_rows_panic() {
        let _ = ScoreMatrix::new(vec![NodeId(0), NodeId(1)], vec![vec![1.0], vec![0.5, 0.5]]);
    }

    #[test]
    fn from_flat_matches_new() {
        let rows = ScoreMatrix::new(
            vec![NodeId(0), NodeId(1)],
            vec![vec![0.5, 0.5, 0.0], vec![0.1, 0.2, 0.7]],
        )
        .unwrap();
        let flat = ScoreMatrix::from_flat(
            vec![NodeId(0), NodeId(1)],
            vec![0.5, 0.5, 0.0, 0.1, 0.2, 0.7],
            3,
        )
        .unwrap();
        assert_eq!(rows, flat);
        assert_eq!(flat.as_flat(), &[0.5, 0.5, 0.0, 0.1, 0.2, 0.7]);
    }

    #[test]
    #[should_panic(expected = "sources x node_count")]
    fn from_flat_length_mismatch_panics() {
        let _ = ScoreMatrix::from_flat(vec![NodeId(0)], vec![1.0, 2.0], 3);
    }

    #[test]
    fn zeros_then_row_mut_fills_in_place() {
        let mut m = ScoreMatrix::zeros(vec![NodeId(0), NodeId(1)], 3).unwrap();
        m.row_mut(1).copy_from_slice(&[0.25, 0.25, 0.5]);
        assert_eq!(m.row(0), &[0.0, 0.0, 0.0]);
        assert_eq!(m.score(1, NodeId(2)), 0.5);
    }
}
