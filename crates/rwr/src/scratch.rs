//! Reusable scratch buffers for the batched solver.
//!
//! Every [`crate::RwrEngine::solve_block`] needs two `n × q` ping-pong
//! buffers. Allocating (and zeroing) them per request is measurable on a
//! serving hot path — a medium-preset block is several megabytes, enough
//! to churn the allocator and blow the cache on every request. A
//! [`ScratchPool`] keeps a small stack of returned buffers and hands them
//! back out re-zeroed, so a steady-state service allocates nothing per
//! solve.
//!
//! The pool is shared the same way the worker pool is: engines and
//! backends hold it in an `Arc`, and every serving worker draws from (and
//! returns to) the same stack. Buffers are handed out zeroed, so reuse is
//! invisible to the solver — results stay bitwise-identical to fresh
//! allocations.
//!
//! Retention is bounded in **two** dimensions: at most `MAX_POOLED`
//! buffers are parked, and each parked buffer is shrunk back to the pool's
//! high-water mark ([`DEFAULT_MAX_RETAINED_LEN`] elements unless configured
//! via [`ScratchPool::with_max_retained_len`]). Without the second bound, a
//! single paper-scale solve (~315K nodes × Q columns ≈ tens of MB per
//! buffer) would pin hundreds of megabytes for the lifetime of the engine;
//! with it, oversized returns keep only a reusable prefix allocation and
//! the excess goes back to the allocator immediately.

use std::sync::{Mutex, PoisonError};

/// Retain at most this many returned buffers; beyond it, returns are
/// simply dropped. Bounds worst-case memory at `MAX_POOLED` × the
/// per-buffer high-water mark while still covering every worker of a busy
/// service.
const MAX_POOLED: usize = 8;

/// Default per-buffer high-water mark, in `f64` elements: 2²⁰ elements is
/// 8 MiB — ample for the medium serving preset (10K nodes × Q ≤ 100
/// columns) while capping the pool's worst case at `8 × 8 MiB = 64 MiB`
/// even after paper-scale solves.
pub const DEFAULT_MAX_RETAINED_LEN: usize = 1 << 20;

/// A small stack of reusable `Vec<f64>` scratch buffers with bounded
/// retention.
#[derive(Debug)]
pub struct ScratchPool {
    free: Mutex<Vec<Vec<f64>>>,
    /// Per-buffer retention cap, in elements; see
    /// [`ScratchPool::with_max_retained_len`].
    max_retained_len: usize,
}

impl Default for ScratchPool {
    fn default() -> Self {
        Self::with_max_retained_len(DEFAULT_MAX_RETAINED_LEN)
    }
}

impl ScratchPool {
    /// An empty pool with the default high-water mark
    /// ([`DEFAULT_MAX_RETAINED_LEN`] elements per buffer).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty pool that shrinks every returned buffer back to at most
    /// `max_retained_len` elements. `0` disables retention entirely (every
    /// return is dropped); callers that solve one block size forever can
    /// raise the mark to `n × q` to keep full-size buffers parked.
    pub fn with_max_retained_len(max_retained_len: usize) -> Self {
        ScratchPool {
            free: Mutex::new(Vec::new()),
            max_retained_len,
        }
    }

    /// The per-buffer retention cap, in `f64` elements.
    pub fn max_retained_len(&self) -> usize {
        self.max_retained_len
    }

    /// A zeroed buffer of exactly `len` elements — reusing a returned
    /// buffer's allocation when one is available, allocating otherwise.
    pub fn take(&self, len: usize) -> Vec<f64> {
        let mut buf = self
            .free
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
            .unwrap_or_default();
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a buffer to the pool for reuse (dropped if the pool is
    /// full, retention is disabled, or the buffer never allocated).
    /// Buffers above the high-water mark are shrunk to it first, so one
    /// oversized solve cannot pin its peak allocation in the pool.
    pub fn put(&self, mut buf: Vec<f64>) {
        if buf.capacity() == 0 || self.max_retained_len == 0 {
            return;
        }
        if buf.capacity() > self.max_retained_len {
            buf.truncate(self.max_retained_len);
            buf.shrink_to(self.max_retained_len);
        }
        let mut free = self.free.lock().unwrap_or_else(PoisonError::into_inner);
        if free.len() < MAX_POOLED {
            free.push(buf);
        }
    }

    /// How many buffers are currently parked in the pool (diagnostics and
    /// reuse tests).
    pub fn pooled(&self) -> usize {
        self.free
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Total capacity (in `f64` elements) of the parked buffers —
    /// diagnostics for the retention bound.
    pub fn retained_len(&self) -> usize {
        self.free
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(Vec::capacity)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_buffers_of_exact_length() {
        let pool = ScratchPool::new();
        let mut a = pool.take(16);
        assert_eq!(a.len(), 16);
        assert!(a.iter().all(|&v| v == 0.0));
        a.iter_mut().for_each(|v| *v = 7.0);
        pool.put(a);
        assert_eq!(pool.pooled(), 1);

        // Reused allocation, re-zeroed, resized — including growing.
        let b = pool.take(4);
        assert_eq!(pool.pooled(), 0);
        assert_eq!(b.len(), 4);
        assert!(b.iter().all(|&v| v == 0.0));
        pool.put(b);
        let c = pool.take(32);
        assert_eq!(c.len(), 32);
        assert!(c.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn pool_depth_is_bounded_and_empty_buffers_are_dropped() {
        let pool = ScratchPool::new();
        pool.put(Vec::new());
        assert_eq!(pool.pooled(), 0, "zero-capacity returns are dropped");
        for _ in 0..2 * MAX_POOLED {
            pool.put(vec![0.0; 8]);
        }
        assert_eq!(pool.pooled(), MAX_POOLED);
    }

    #[test]
    fn oversized_returns_shrink_to_the_high_water_mark() {
        let pool = ScratchPool::with_max_retained_len(64);
        assert_eq!(pool.max_retained_len(), 64);
        pool.put(vec![1.0; 1000]);
        assert_eq!(pool.pooled(), 1);
        assert!(
            pool.retained_len() <= 2 * 64,
            "retained {} elements, cap 64",
            pool.retained_len()
        );
        // The shrunk buffer is still reusable (and re-zeroed on take).
        let b = pool.take(32);
        assert_eq!(b.len(), 32);
        assert!(b.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn zero_mark_disables_retention() {
        let pool = ScratchPool::with_max_retained_len(0);
        pool.put(vec![0.0; 8]);
        assert_eq!(pool.pooled(), 0);
        // Takes still work — they just always allocate.
        assert_eq!(pool.take(5).len(), 5);
    }

    #[test]
    fn default_mark_retains_serving_scale_buffers() {
        // A medium-preset serving block must survive intact, or the pool
        // would defeat its own purpose on the hot path it exists for.
        let pool = ScratchPool::new();
        let buf = pool.take(10_000 * 10);
        let cap = buf.capacity();
        pool.put(buf);
        assert_eq!(pool.pooled(), 1);
        assert!(pool.retained_len() >= cap.min(DEFAULT_MAX_RETAINED_LEN));
        assert!(pool.take(10_000 * 10).capacity() >= 10_000 * 10);
    }
}
