//! Reusable scratch buffers for the batched solver.
//!
//! Every [`crate::RwrEngine::solve_block`] needs two `n × q` ping-pong
//! buffers. Allocating (and zeroing) them per request is measurable on a
//! serving hot path — a medium-preset block is several megabytes, enough
//! to churn the allocator and blow the cache on every request. A
//! [`ScratchPool`] keeps a small stack of returned buffers and hands them
//! back out re-zeroed, so a steady-state service allocates nothing per
//! solve.
//!
//! The pool is shared the same way the worker pool is: engines and
//! backends hold it in an `Arc`, and every serving worker draws from (and
//! returns to) the same stack. Buffers are handed out zeroed, so reuse is
//! invisible to the solver — results stay bitwise-identical to fresh
//! allocations.

use std::sync::{Mutex, PoisonError};

/// Retain at most this many returned buffers; beyond it, returns are
/// simply dropped. Bounds worst-case memory at `MAX_POOLED` × the largest
/// concurrent block while still covering every worker of a busy service.
const MAX_POOLED: usize = 8;

/// A small stack of reusable `Vec<f64>` scratch buffers.
#[derive(Debug, Default)]
pub struct ScratchPool {
    free: Mutex<Vec<Vec<f64>>>,
}

impl ScratchPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// A zeroed buffer of exactly `len` elements — reusing a returned
    /// buffer's allocation when one is available, allocating otherwise.
    pub fn take(&self, len: usize) -> Vec<f64> {
        let mut buf = self
            .free
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
            .unwrap_or_default();
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a buffer to the pool for reuse (dropped if the pool is
    /// full or the buffer never allocated).
    pub fn put(&self, buf: Vec<f64>) {
        if buf.capacity() == 0 {
            return;
        }
        let mut free = self.free.lock().unwrap_or_else(PoisonError::into_inner);
        if free.len() < MAX_POOLED {
            free.push(buf);
        }
    }

    /// How many buffers are currently parked in the pool (diagnostics and
    /// reuse tests).
    pub fn pooled(&self) -> usize {
        self.free
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_buffers_of_exact_length() {
        let pool = ScratchPool::new();
        let mut a = pool.take(16);
        assert_eq!(a.len(), 16);
        assert!(a.iter().all(|&v| v == 0.0));
        a.iter_mut().for_each(|v| *v = 7.0);
        pool.put(a);
        assert_eq!(pool.pooled(), 1);

        // Reused allocation, re-zeroed, resized — including growing.
        let b = pool.take(4);
        assert_eq!(pool.pooled(), 0);
        assert_eq!(b.len(), 4);
        assert!(b.iter().all(|&v| v == 0.0));
        pool.put(b);
        let c = pool.take(32);
        assert_eq!(c.len(), 32);
        assert!(c.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn pool_depth_is_bounded_and_empty_buffers_are_dropped() {
        let pool = ScratchPool::new();
        pool.put(Vec::new());
        assert_eq!(pool.pooled(), 0, "zero-capacity returns are dropped");
        for _ in 0..2 * MAX_POOLED {
            pool.put(vec![0.0; 8]);
        }
        assert_eq!(pool.pooled(), MAX_POOLED);
    }
}
