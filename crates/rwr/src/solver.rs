//! Power-iteration RWR solver (Eq. 4).

use std::sync::Arc;

use ceps_graph::{NodeId, Transition};
use ceps_pool::PoolHandle;

use crate::{scratch::ScratchPool, Result, RwrError, ScoreMatrix};

/// Tuning knobs for the RWR solver.
///
/// Defaults follow the paper's experimental setup (Sec. 7, "Parameter
/// Setting"): restart coefficient `c = 0.5` and `m = 50` iterations, at which
/// point the authors "do not observe performance improvement with more
/// iteration steps".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RwrConfig {
    /// Probability of continuing the walk (the `c` multiplying `W̃` in
    /// Eq. 4); `1 − c` is the fly-out/restart probability.
    pub c: f64,
    /// Maximum number of power iterations (`m` in Table 2).
    pub max_iterations: usize,
    /// Optional early-exit: stop once the L1 change between successive
    /// iterates drops below this. `None` always runs `max_iterations`.
    pub tolerance: Option<f64>,
    /// Number of worker threads for the sparse-times-block product inside
    /// multi-source solves. `0` = auto (the machine's available
    /// parallelism, the default); `1` = always sequential. Even with
    /// multiple threads the engine falls back to the sequential kernel for
    /// small products (see [`ceps_pool::DEFAULT_MIN_WORK`]), so small
    /// graphs and presets never pay dispatch overhead.
    pub threads: usize,
}

impl Default for RwrConfig {
    fn default() -> Self {
        RwrConfig {
            c: 0.5,
            max_iterations: 50,
            tolerance: None,
            threads: 0,
        }
    }
}

impl RwrConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// [`RwrError::InvalidRestart`] unless `0 < c < 1`.
    pub fn validate(&self) -> Result<()> {
        if !(self.c > 0.0 && self.c < 1.0) {
            return Err(RwrError::InvalidRestart { c: self.c });
        }
        Ok(())
    }

    /// The effective worker count: `threads` with `0` resolved to the
    /// machine's available parallelism.
    pub fn resolved_threads(&self) -> usize {
        ceps_pool::resolve_threads(self.threads)
    }
}

/// Convergence diagnostics from a single-source solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Iterations actually performed.
    pub iterations: usize,
    /// L1 difference between the final two iterates.
    pub final_delta: f64,
}

/// Solves Eq. 4 over a fixed normalized operator.
///
/// Borrows the [`Transition`]; one engine serves any number of queries, which
/// is how the pipeline amortizes normalization across the repeated solves of
/// the evaluation sweeps. The engine also carries a lazy [`PoolHandle`] (no
/// threads spawned until a solve actually clears the parallel-work
/// threshold) and a [`ScratchPool`] of reusable iteration buffers; both are
/// shared across clones, and long-lived owners (backends, services) can
/// inject their own via [`RwrEngine::with_pool`] so repeated solves reuse
/// one set of workers and buffers.
#[derive(Debug, Clone)]
pub struct RwrEngine<'t> {
    transition: &'t Transition,
    config: RwrConfig,
    pool: PoolHandle,
    scratch: Arc<ScratchPool>,
}

impl<'t> RwrEngine<'t> {
    /// Creates an engine over `transition` with `config`, with its own
    /// (lazy) worker pool and scratch pool.
    ///
    /// # Errors
    /// Propagates [`RwrConfig::validate`].
    pub fn new(transition: &'t Transition, config: RwrConfig) -> Result<Self> {
        Self::with_pool(
            transition,
            config,
            PoolHandle::new(config.threads),
            Arc::new(ScratchPool::new()),
        )
    }

    /// Creates an engine sharing an existing worker-pool handle and
    /// scratch pool — the constructor long-lived owners use so per-request
    /// engines never respawn threads or reallocate iteration buffers.
    ///
    /// # Errors
    /// Propagates [`RwrConfig::validate`].
    pub fn with_pool(
        transition: &'t Transition,
        config: RwrConfig,
        pool: PoolHandle,
        scratch: Arc<ScratchPool>,
    ) -> Result<Self> {
        config.validate()?;
        Ok(RwrEngine {
            transition,
            config,
            pool,
            scratch,
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &RwrConfig {
        &self.config
    }

    /// The operator the engine walks.
    pub fn transition(&self) -> &Transition {
        self.transition
    }

    /// The worker-pool handle multi-source solves dispatch through.
    pub fn pool(&self) -> &PoolHandle {
        &self.pool
    }

    /// The scratch pool backing the solver's ping-pong buffers.
    pub fn scratch(&self) -> &Arc<ScratchPool> {
        &self.scratch
    }

    fn check_node(&self, q: NodeId) -> Result<()> {
        if q.index() >= self.transition.node_count() {
            return Err(RwrError::BadQueryNode {
                node: q,
                node_count: self.transition.node_count(),
            });
        }
        Ok(())
    }

    /// Stationary distribution `r(i, ·)` for a single query node.
    pub fn solve_single(&self, q: NodeId) -> Result<(Vec<f64>, SolveStats)> {
        self.check_node(q)?;
        let _span = ceps_obs::span("rwr.solve_single");
        let n = self.transition.node_count();
        let c = self.config.c;
        let restart = 1.0 - c;

        let mut x = vec![0f64; n];
        x[q.index()] = 1.0;
        let mut next = vec![0f64; n];
        let mut stats = SolveStats {
            iterations: 0,
            final_delta: f64::INFINITY,
        };

        for it in 0..self.config.max_iterations {
            self.transition.apply(&x, &mut next);
            let mut delta = 0.0;
            for (i, slot) in next.iter_mut().enumerate() {
                let v = c * *slot + if i == q.index() { restart } else { 0.0 };
                delta += (v - x[i]).abs();
                *slot = v;
            }
            std::mem::swap(&mut x, &mut next);
            stats.iterations = it + 1;
            stats.final_delta = delta;
            if let Some(tol) = self.config.tolerance {
                if delta < tol {
                    break;
                }
            }
        }
        if ceps_obs::enabled() {
            ceps_obs::counter("rwr.solves", 1);
            ceps_obs::counter("rwr.columns", 1);
            ceps_obs::record("rwr.iterations", stats.iterations as f64);
            ceps_obs::record("rwr.exit_residual", stats.final_delta);
        }
        Ok((x, stats))
    }

    /// Batched power iteration: all `Q` stationary distributions at once.
    ///
    /// Iterates `X ← c · M X + (1 − c) E` on an `N × A` block (node-major,
    /// stride `A` = currently-active columns) with ping-ponged buffers
    /// drawn from the shared [`ScratchPool`], so each sparse entry of `M`
    /// is loaded once per iteration and reused across all active columns —
    /// instead of `Q` separate passes over the CSR arrays as in repeated
    /// [`RwrEngine::solve_single`] calls. When the per-iteration product
    /// (`nnz × A` fused ops) clears the pool threshold, it row-chunks
    /// across the persistent worker pool
    /// ([`Transition::par_apply_block`]); otherwise it runs sequentially.
    ///
    /// Per column the arithmetic order matches `solve_single` exactly, so
    /// each returned row and its [`SolveStats`] are bitwise-identical to
    /// the single-source solve. With a `tolerance` set, columns freeze
    /// individually the iteration their L1 delta drops below it — exactly
    /// where `solve_single` stops — and are **compacted out of the
    /// iteration block**: their final values move straight into the output
    /// matrix and the remaining columns close ranks to a narrower stride,
    /// so frozen columns cost nothing in later iterations.
    ///
    /// # Errors
    /// [`RwrError::NoQueries`] on an empty slice or
    /// [`RwrError::BadQueryNode`] for an out-of-range query.
    pub fn solve_block(&self, queries: &[NodeId]) -> Result<(ScoreMatrix, Vec<SolveStats>)> {
        if queries.is_empty() {
            return Err(RwrError::NoQueries);
        }
        for &q in queries {
            self.check_node(q)?;
        }
        let _span = ceps_obs::span("rwr.solve_block");
        let n = self.transition.node_count();
        let q_count = queries.len();
        let c = self.config.c;
        let restart = 1.0 - c;
        let nnz = self.transition.nnz();

        // The row-major Q x N output; frozen columns transpose into it the
        // iteration they converge, the rest on exit.
        let mut data = vec![0f64; q_count * n];

        let mut x = self.scratch.take(n * q_count);
        for (j, q) in queries.iter().enumerate() {
            x[q.index() * q_count + j] = 1.0;
        }
        let mut next = self.scratch.take(n * q_count);
        let mut stats = vec![
            SolveStats {
                iterations: 0,
                final_delta: f64::INFINITY,
            };
            q_count
        ];
        // act[jj] = original query index of the jj-th still-active column.
        let mut act: Vec<usize> = (0..q_count).collect();
        let mut deltas = vec![0f64; q_count];
        let mut newly: Vec<usize> = Vec::new();

        for it in 0..self.config.max_iterations {
            let a = act.len();
            if a == 0 {
                break;
            }
            match self.pool.acquire(nnz.saturating_mul(a)) {
                Some(pool) => {
                    self.transition
                        .par_apply_block(&x[..n * a], &mut next[..n * a], a, pool);
                }
                None => self
                    .transition
                    .apply_block(&x[..n * a], &mut next[..n * a], a),
            }
            deltas[..a].fill(0.0);
            for u in 0..n {
                let xrow = &x[u * a..u * a + a];
                let nrow = &mut next[u * a..u * a + a];
                for (jj, &orig) in act.iter().enumerate() {
                    let v = c * nrow[jj]
                        + if queries[orig].index() == u {
                            restart
                        } else {
                            0.0
                        };
                    deltas[jj] += (v - xrow[jj]).abs();
                    nrow[jj] = v;
                }
            }
            std::mem::swap(&mut x, &mut next);
            newly.clear();
            for (jj, &orig) in act.iter().enumerate() {
                stats[orig].iterations = it + 1;
                stats[orig].final_delta = deltas[jj];
                if let Some(tol) = self.config.tolerance {
                    if deltas[jj] < tol {
                        newly.push(jj);
                    }
                }
            }
            if !newly.is_empty() {
                self.freeze_columns(&mut x, &mut act, &newly, &mut data, n);
            }
        }

        // Drain the still-active columns into the output.
        let a = act.len();
        for u in 0..n {
            let row = u * a;
            for (jj, &orig) in act.iter().enumerate() {
                data[orig * n + u] = x[row + jj];
            }
        }
        self.scratch.put(x);
        self.scratch.put(next);

        if ceps_obs::enabled() {
            ceps_obs::counter("rwr.solves", 1);
            ceps_obs::counter("rwr.columns", q_count as u64);
            let early = q_count - act.len();
            ceps_obs::counter("rwr.frozen_columns", early as u64);
            for s in &stats {
                ceps_obs::record("rwr.iterations", s.iterations as f64);
                ceps_obs::record("rwr.exit_residual", s.final_delta);
            }
        }

        Ok((ScoreMatrix::from_flat(queries.to_vec(), data, n)?, stats))
    }

    /// Moves the `newly`-converged columns (positions in the current active
    /// layout, ascending) out of the node-major block `x` into the
    /// row-major output `data`, compacting the surviving columns to the
    /// narrower stride in place.
    ///
    /// The single ascending pass is clobber-free: for row `u`, frozen reads
    /// at `u·a + jj` happen before that row's compaction writes, every
    /// write `u·a_new + k` lands at or before its read `u·a + keep[k]`
    /// (because `a_new ≤ a` and `keep[k] ≥ k`), and row `u`'s writes all
    /// end before row `u + 1`'s reads begin.
    fn freeze_columns(
        &self,
        x: &mut [f64],
        act: &mut Vec<usize>,
        newly: &[usize],
        data: &mut [f64],
        n: usize,
    ) {
        let a = act.len();
        let mut frozen = vec![false; a];
        for &jj in newly {
            frozen[jj] = true;
        }
        let keep: Vec<usize> = (0..a).filter(|&jj| !frozen[jj]).collect();
        let a_new = keep.len();
        for u in 0..n {
            let row = u * a;
            for &jj in newly {
                data[act[jj] * n + u] = x[row + jj];
            }
            let dst = u * a_new;
            for (k, &jj) in keep.iter().enumerate() {
                x[dst + k] = x[row + jj];
            }
        }
        *act = keep.into_iter().map(|jj| act[jj]).collect();
    }

    /// Stationary distributions for every query node, as the `R` matrix.
    ///
    /// Runs the batched kernel ([`RwrEngine::solve_block`]); results are
    /// bitwise-identical to per-source [`RwrEngine::solve_single`] calls.
    ///
    /// # Errors
    /// [`RwrError::NoQueries`] on an empty slice or
    /// [`RwrError::BadQueryNode`] for an out-of-range query.
    pub fn solve_many(&self, queries: &[NodeId]) -> Result<ScoreMatrix> {
        Ok(self.solve_block(queries)?.0)
    }

    /// Reference multi-source path: one [`RwrEngine::solve_single`] per
    /// query, sequentially. Kept for differential tests and as the
    /// benchmark baseline the batched kernel is measured against.
    ///
    /// # Errors
    /// [`RwrError::NoQueries`] on an empty slice or
    /// [`RwrError::BadQueryNode`] for an out-of-range query.
    pub fn solve_many_unbatched(&self, queries: &[NodeId]) -> Result<ScoreMatrix> {
        if queries.is_empty() {
            return Err(RwrError::NoQueries);
        }
        let mut rows = Vec::with_capacity(queries.len());
        for &q in queries {
            rows.push(self.solve_single(q)?.0);
        }
        ScoreMatrix::new(queries.to_vec(), rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceps_graph::{normalize::Normalization, GraphBuilder};

    fn line_graph(n: u32) -> Transition {
        let mut b = GraphBuilder::new();
        for i in 0..n - 1 {
            b.add_edge(NodeId(i), NodeId(i + 1), 1.0).unwrap();
        }
        let g = b.build().unwrap();
        Transition::new(&g, Normalization::ColumnStochastic)
    }

    #[test]
    fn rejects_bad_restart() {
        let t = line_graph(3);
        for c in [0.0, 1.0, -0.5, 2.0] {
            let cfg = RwrConfig {
                c,
                ..Default::default()
            };
            assert!(RwrEngine::new(&t, cfg).is_err());
        }
    }

    #[test]
    fn rejects_bad_query_node_and_empty_set() {
        let t = line_graph(3);
        let engine = RwrEngine::new(&t, RwrConfig::default()).unwrap();
        assert!(matches!(
            engine.solve_single(NodeId(5)),
            Err(RwrError::BadQueryNode { .. })
        ));
        assert!(matches!(engine.solve_many(&[]), Err(RwrError::NoQueries)));
    }

    #[test]
    fn distribution_sums_to_one_and_peaks_at_source() {
        let t = line_graph(6);
        let engine = RwrEngine::new(&t, RwrConfig::default()).unwrap();
        let (r, stats) = engine.solve_single(NodeId(2)).unwrap();
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        let argmax = r
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(argmax, 2);
        assert_eq!(stats.iterations, 50);
    }

    #[test]
    fn score_decays_with_distance_on_a_path() {
        let t = line_graph(8);
        let engine = RwrEngine::new(&t, RwrConfig::default()).unwrap();
        let (r, _) = engine.solve_single(NodeId(0)).unwrap();
        for j in 0..7 {
            assert!(
                r[j] > r[j + 1],
                "r[{j}]={} <= r[{}]={}",
                r[j],
                j + 1,
                r[j + 1]
            );
        }
    }

    #[test]
    fn tolerance_stops_early() {
        let t = line_graph(6);
        let cfg = RwrConfig {
            tolerance: Some(1e-3),
            max_iterations: 500,
            ..Default::default()
        };
        let engine = RwrEngine::new(&t, cfg).unwrap();
        let (_, stats) = engine.solve_single(NodeId(0)).unwrap();
        assert!(stats.iterations < 500);
        assert!(stats.final_delta < 1e-3);
    }

    /// Tests that spawn real pool workers share the process-global
    /// [`ceps_pool::live_workers`] counter, so they run one at a time.
    fn pool_serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn parallel_solve_matches_sequential() {
        let _guard = pool_serial();
        let t = line_graph(12);
        let queries = [NodeId(0), NodeId(3), NodeId(7), NodeId(11)];
        let seq_cfg = RwrConfig {
            threads: 1,
            ..Default::default()
        };
        let seq = RwrEngine::new(&t, seq_cfg)
            .unwrap()
            .solve_many(&queries)
            .unwrap();
        // min_work 0 forces the pooled kernel even on this tiny graph.
        let par_cfg = RwrConfig {
            threads: 3,
            ..Default::default()
        };
        let par = RwrEngine::with_pool(
            &t,
            par_cfg,
            ceps_pool::PoolHandle::with_min_work(3, 0),
            Arc::new(ScratchPool::new()),
        )
        .unwrap()
        .solve_many(&queries)
        .unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn pooled_solve_reuses_workers_and_scratch_and_joins_on_drop() {
        let _guard = pool_serial();
        let t = line_graph(12);
        let queries = [NodeId(0), NodeId(5), NodeId(11)];
        let before = ceps_pool::live_workers();
        let handle = ceps_pool::PoolHandle::with_min_work(3, 0);
        let scratch = Arc::new(ScratchPool::new());
        let cfg = RwrConfig {
            threads: 3,
            ..Default::default()
        };
        let engine = RwrEngine::with_pool(&t, cfg, handle.clone(), Arc::clone(&scratch)).unwrap();

        let first = engine.solve_many(&queries).unwrap();
        let pool = Arc::clone(handle.get().expect("first solve materializes the pool"));
        assert_eq!(ceps_pool::live_workers(), before + 2);
        let rounds = pool.rounds();
        assert!(rounds >= 1, "the solve dispatched through the pool");

        let second = engine.solve_many(&queries).unwrap();
        assert!(
            Arc::ptr_eq(&pool, handle.get().unwrap()),
            "second solve reuses the same pool"
        );
        assert!(pool.rounds() > rounds, "reused workers took new rounds");
        assert_eq!(first, second);
        assert!(
            scratch.pooled() >= 2,
            "ping-pong buffers returned for reuse, got {}",
            scratch.pooled()
        );

        drop(engine);
        drop(handle);
        drop(pool);
        assert_eq!(
            ceps_pool::live_workers(),
            before,
            "dropping the last handle joins every worker"
        );
    }

    #[test]
    fn staggered_freezing_compacts_without_changing_results() {
        // A clique hanging off a long path: clique columns converge many
        // iterations before far-path columns, so the active block compacts
        // several times mid-solve. Rows and stats must still be
        // bitwise-identical to per-source solves.
        let mut b = GraphBuilder::new();
        for i in 0..11 {
            b.add_edge(NodeId(i), NodeId(i + 1), 1.0).unwrap();
        }
        for x in 12..16u32 {
            for y in (x + 1)..16 {
                b.add_edge(NodeId(x), NodeId(y), 4.0).unwrap();
            }
        }
        b.add_edge(NodeId(0), NodeId(12), 1.0).unwrap();
        let g = b.build().unwrap();
        let t = Transition::new(&g, Normalization::ColumnStochastic);
        let cfg = RwrConfig {
            tolerance: Some(1e-9),
            max_iterations: 2000,
            threads: 1,
            ..Default::default()
        };
        let engine = RwrEngine::new(&t, cfg).unwrap();
        let queries = [NodeId(14), NodeId(11), NodeId(5), NodeId(13)];
        let (matrix, stats) = engine.solve_block(&queries).unwrap();
        for (i, &q) in queries.iter().enumerate() {
            let (row, single) = engine.solve_single(q).unwrap();
            assert_eq!(stats[i], single, "query {i}");
            assert_eq!(matrix.row(i), &row[..], "query {i}");
        }
        let iters: std::collections::BTreeSet<usize> = stats.iter().map(|s| s.iterations).collect();
        assert!(
            iters.len() >= 2,
            "expected staggered freezing, got {stats:?}"
        );
    }

    #[test]
    fn batched_solve_matches_unbatched_bitwise() {
        let t = line_graph(10);
        let queries = [NodeId(0), NodeId(4), NodeId(9)];
        let engine = RwrEngine::new(&t, RwrConfig::default()).unwrap();
        let batched = engine.solve_many(&queries).unwrap();
        let unbatched = engine.solve_many_unbatched(&queries).unwrap();
        assert_eq!(batched, unbatched);
    }

    #[test]
    fn block_stats_match_single_source_stats() {
        let t = line_graph(10);
        let queries = [NodeId(0), NodeId(9)];
        let cfg = RwrConfig {
            tolerance: Some(1e-6),
            max_iterations: 500,
            threads: 1,
            ..Default::default()
        };
        let engine = RwrEngine::new(&t, cfg).unwrap();
        let (matrix, stats) = engine.solve_block(&queries).unwrap();
        for (i, &q) in queries.iter().enumerate() {
            let (row, single) = engine.solve_single(q).unwrap();
            assert_eq!(stats[i], single, "query {i}");
            assert_eq!(matrix.row(i), &row[..], "query {i}");
        }
    }

    #[test]
    fn symmetric_normalization_gives_symmetric_scores() {
        // Appendix Variant 1: with S = D^{-1/2} W D^{-1/2}, r(i, j) = r(j, i).
        let mut b = GraphBuilder::new();
        for (a, bb, w) in [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 0.5), (2, 3, 1.5)] {
            b.add_edge(NodeId(a), NodeId(bb), w).unwrap();
        }
        let g = b.build().unwrap();
        let t = Transition::new(&g, Normalization::Symmetric);
        let engine = RwrEngine::new(&t, RwrConfig::default()).unwrap();
        let m = engine
            .solve_many(&[NodeId(0), NodeId(1), NodeId(2), NodeId(3)])
            .unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let a = m.score(i, NodeId(j as u32));
                let b = m.score(j, NodeId(i as u32));
                assert!((a - b).abs() < 1e-9, "r({i},{j})={a} vs r({j},{i})={b}");
            }
        }
    }
}
