//! Power-iteration RWR solver (Eq. 4).

use ceps_graph::{NodeId, Transition};

use crate::{Result, RwrError, ScoreMatrix};

/// Tuning knobs for the RWR solver.
///
/// Defaults follow the paper's experimental setup (Sec. 7, "Parameter
/// Setting"): restart coefficient `c = 0.5` and `m = 50` iterations, at which
/// point the authors "do not observe performance improvement with more
/// iteration steps".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RwrConfig {
    /// Probability of continuing the walk (the `c` multiplying `W̃` in
    /// Eq. 4); `1 − c` is the fly-out/restart probability.
    pub c: f64,
    /// Maximum number of power iterations (`m` in Table 2).
    pub max_iterations: usize,
    /// Optional early-exit: stop once the L1 change between successive
    /// iterates drops below this. `None` always runs `max_iterations`.
    pub tolerance: Option<f64>,
    /// Number of worker threads for the sparse-times-block product inside
    /// multi-source solves. 1 = sequential. Defaults to the machine's
    /// available parallelism.
    pub threads: usize,
}

impl Default for RwrConfig {
    fn default() -> Self {
        RwrConfig {
            c: 0.5,
            max_iterations: 50,
            tolerance: None,
            threads: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        }
    }
}

impl RwrConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// [`RwrError::InvalidRestart`] unless `0 < c < 1`.
    pub fn validate(&self) -> Result<()> {
        if !(self.c > 0.0 && self.c < 1.0) {
            return Err(RwrError::InvalidRestart { c: self.c });
        }
        Ok(())
    }
}

/// Convergence diagnostics from a single-source solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Iterations actually performed.
    pub iterations: usize,
    /// L1 difference between the final two iterates.
    pub final_delta: f64,
}

/// Solves Eq. 4 over a fixed normalized operator.
///
/// Borrows the [`Transition`]; one engine serves any number of queries, which
/// is how the pipeline amortizes normalization across the repeated solves of
/// the evaluation sweeps.
#[derive(Debug, Clone)]
pub struct RwrEngine<'t> {
    transition: &'t Transition,
    config: RwrConfig,
}

impl<'t> RwrEngine<'t> {
    /// Creates an engine over `transition` with `config`.
    ///
    /// # Errors
    /// Propagates [`RwrConfig::validate`].
    pub fn new(transition: &'t Transition, config: RwrConfig) -> Result<Self> {
        config.validate()?;
        Ok(RwrEngine { transition, config })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &RwrConfig {
        &self.config
    }

    /// The operator the engine walks.
    pub fn transition(&self) -> &Transition {
        self.transition
    }

    fn check_node(&self, q: NodeId) -> Result<()> {
        if q.index() >= self.transition.node_count() {
            return Err(RwrError::BadQueryNode {
                node: q,
                node_count: self.transition.node_count(),
            });
        }
        Ok(())
    }

    /// Stationary distribution `r(i, ·)` for a single query node.
    pub fn solve_single(&self, q: NodeId) -> Result<(Vec<f64>, SolveStats)> {
        self.check_node(q)?;
        let _span = ceps_obs::span("rwr.solve_single");
        let n = self.transition.node_count();
        let c = self.config.c;
        let restart = 1.0 - c;

        let mut x = vec![0f64; n];
        x[q.index()] = 1.0;
        let mut next = vec![0f64; n];
        let mut stats = SolveStats {
            iterations: 0,
            final_delta: f64::INFINITY,
        };

        for it in 0..self.config.max_iterations {
            self.transition.apply(&x, &mut next);
            let mut delta = 0.0;
            for (i, slot) in next.iter_mut().enumerate() {
                let v = c * *slot + if i == q.index() { restart } else { 0.0 };
                delta += (v - x[i]).abs();
                *slot = v;
            }
            std::mem::swap(&mut x, &mut next);
            stats.iterations = it + 1;
            stats.final_delta = delta;
            if let Some(tol) = self.config.tolerance {
                if delta < tol {
                    break;
                }
            }
        }
        if ceps_obs::enabled() {
            ceps_obs::counter("rwr.solves", 1);
            ceps_obs::counter("rwr.columns", 1);
            ceps_obs::record("rwr.iterations", stats.iterations as f64);
            ceps_obs::record("rwr.exit_residual", stats.final_delta);
        }
        Ok((x, stats))
    }

    /// Batched power iteration: all `Q` stationary distributions at once.
    ///
    /// Iterates `X ← c · M X + (1 − c) E` on an `N × Q` block (node-major,
    /// stride `Q`) with ping-ponged buffers, so each sparse entry of `M` is
    /// loaded once per iteration and reused across all `Q` columns —
    /// instead of `Q` separate passes over the CSR arrays as in repeated
    /// [`RwrEngine::solve_single`] calls. With `config.threads > 1` the
    /// product row-chunks across scoped workers
    /// ([`Transition::par_apply_block`]).
    ///
    /// Per column the arithmetic order matches `solve_single` exactly, so
    /// each returned row and its [`SolveStats`] are bitwise-identical to
    /// the single-source solve. With a `tolerance` set, columns freeze
    /// individually the iteration their L1 delta drops below it — exactly
    /// where `solve_single` stops — and carry their values unchanged while
    /// the rest keep iterating.
    ///
    /// # Errors
    /// [`RwrError::NoQueries`] on an empty slice or
    /// [`RwrError::BadQueryNode`] for an out-of-range query.
    pub fn solve_block(&self, queries: &[NodeId]) -> Result<(ScoreMatrix, Vec<SolveStats>)> {
        if queries.is_empty() {
            return Err(RwrError::NoQueries);
        }
        for &q in queries {
            self.check_node(q)?;
        }
        let _span = ceps_obs::span("rwr.solve_block");
        let n = self.transition.node_count();
        let q_count = queries.len();
        let c = self.config.c;
        let restart = 1.0 - c;

        let mut x = vec![0f64; n * q_count];
        for (j, q) in queries.iter().enumerate() {
            x[q.index() * q_count + j] = 1.0;
        }
        let mut next = vec![0f64; n * q_count];
        let mut stats = vec![
            SolveStats {
                iterations: 0,
                final_delta: f64::INFINITY,
            };
            q_count
        ];
        let mut frozen = vec![false; q_count];
        let mut active = q_count;
        let mut deltas = vec![0f64; q_count];

        for it in 0..self.config.max_iterations {
            if active == 0 {
                break;
            }
            if self.config.threads > 1 {
                self.transition
                    .par_apply_block(&x, &mut next, q_count, self.config.threads);
            } else {
                self.transition.apply_block(&x, &mut next, q_count);
            }
            deltas.fill(0.0);
            for u in 0..n {
                let xrow = &x[u * q_count..u * q_count + q_count];
                let nrow = &mut next[u * q_count..u * q_count + q_count];
                for j in 0..q_count {
                    if frozen[j] {
                        // Converged columns ride along unchanged.
                        nrow[j] = xrow[j];
                        continue;
                    }
                    let v = c * nrow[j]
                        + if queries[j].index() == u {
                            restart
                        } else {
                            0.0
                        };
                    deltas[j] += (v - xrow[j]).abs();
                    nrow[j] = v;
                }
            }
            std::mem::swap(&mut x, &mut next);
            for j in 0..q_count {
                if frozen[j] {
                    continue;
                }
                stats[j].iterations = it + 1;
                stats[j].final_delta = deltas[j];
                if let Some(tol) = self.config.tolerance {
                    if deltas[j] < tol {
                        frozen[j] = true;
                        active -= 1;
                    }
                }
            }
        }

        if ceps_obs::enabled() {
            ceps_obs::counter("rwr.solves", 1);
            ceps_obs::counter("rwr.columns", q_count as u64);
            let early = frozen.iter().filter(|&&f| f).count();
            ceps_obs::counter("rwr.frozen_columns", early as u64);
            for s in &stats {
                ceps_obs::record("rwr.iterations", s.iterations as f64);
                ceps_obs::record("rwr.exit_residual", s.final_delta);
            }
        }

        // Transpose the node-major iteration block into the row-major Q x N
        // score matrix.
        let mut data = vec![0f64; q_count * n];
        for u in 0..n {
            for j in 0..q_count {
                data[j * n + u] = x[u * q_count + j];
            }
        }
        Ok((ScoreMatrix::from_flat(queries.to_vec(), data, n)?, stats))
    }

    /// Stationary distributions for every query node, as the `R` matrix.
    ///
    /// Runs the batched kernel ([`RwrEngine::solve_block`]); results are
    /// bitwise-identical to per-source [`RwrEngine::solve_single`] calls.
    ///
    /// # Errors
    /// [`RwrError::NoQueries`] on an empty slice or
    /// [`RwrError::BadQueryNode`] for an out-of-range query.
    pub fn solve_many(&self, queries: &[NodeId]) -> Result<ScoreMatrix> {
        Ok(self.solve_block(queries)?.0)
    }

    /// Reference multi-source path: one [`RwrEngine::solve_single`] per
    /// query, sequentially. Kept for differential tests and as the
    /// benchmark baseline the batched kernel is measured against.
    ///
    /// # Errors
    /// [`RwrError::NoQueries`] on an empty slice or
    /// [`RwrError::BadQueryNode`] for an out-of-range query.
    pub fn solve_many_unbatched(&self, queries: &[NodeId]) -> Result<ScoreMatrix> {
        if queries.is_empty() {
            return Err(RwrError::NoQueries);
        }
        let mut rows = Vec::with_capacity(queries.len());
        for &q in queries {
            rows.push(self.solve_single(q)?.0);
        }
        ScoreMatrix::new(queries.to_vec(), rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceps_graph::{normalize::Normalization, GraphBuilder};

    fn line_graph(n: u32) -> Transition {
        let mut b = GraphBuilder::new();
        for i in 0..n - 1 {
            b.add_edge(NodeId(i), NodeId(i + 1), 1.0).unwrap();
        }
        let g = b.build().unwrap();
        Transition::new(&g, Normalization::ColumnStochastic)
    }

    #[test]
    fn rejects_bad_restart() {
        let t = line_graph(3);
        for c in [0.0, 1.0, -0.5, 2.0] {
            let cfg = RwrConfig {
                c,
                ..Default::default()
            };
            assert!(RwrEngine::new(&t, cfg).is_err());
        }
    }

    #[test]
    fn rejects_bad_query_node_and_empty_set() {
        let t = line_graph(3);
        let engine = RwrEngine::new(&t, RwrConfig::default()).unwrap();
        assert!(matches!(
            engine.solve_single(NodeId(5)),
            Err(RwrError::BadQueryNode { .. })
        ));
        assert!(matches!(engine.solve_many(&[]), Err(RwrError::NoQueries)));
    }

    #[test]
    fn distribution_sums_to_one_and_peaks_at_source() {
        let t = line_graph(6);
        let engine = RwrEngine::new(&t, RwrConfig::default()).unwrap();
        let (r, stats) = engine.solve_single(NodeId(2)).unwrap();
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        let argmax = r
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(argmax, 2);
        assert_eq!(stats.iterations, 50);
    }

    #[test]
    fn score_decays_with_distance_on_a_path() {
        let t = line_graph(8);
        let engine = RwrEngine::new(&t, RwrConfig::default()).unwrap();
        let (r, _) = engine.solve_single(NodeId(0)).unwrap();
        for j in 0..7 {
            assert!(
                r[j] > r[j + 1],
                "r[{j}]={} <= r[{}]={}",
                r[j],
                j + 1,
                r[j + 1]
            );
        }
    }

    #[test]
    fn tolerance_stops_early() {
        let t = line_graph(6);
        let cfg = RwrConfig {
            tolerance: Some(1e-3),
            max_iterations: 500,
            ..Default::default()
        };
        let engine = RwrEngine::new(&t, cfg).unwrap();
        let (_, stats) = engine.solve_single(NodeId(0)).unwrap();
        assert!(stats.iterations < 500);
        assert!(stats.final_delta < 1e-3);
    }

    #[test]
    fn parallel_solve_matches_sequential() {
        let t = line_graph(12);
        let queries = [NodeId(0), NodeId(3), NodeId(7), NodeId(11)];
        let seq = RwrEngine::new(&t, RwrConfig::default())
            .unwrap()
            .solve_many(&queries)
            .unwrap();
        let par_cfg = RwrConfig {
            threads: 3,
            ..Default::default()
        };
        let par = RwrEngine::new(&t, par_cfg)
            .unwrap()
            .solve_many(&queries)
            .unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn batched_solve_matches_unbatched_bitwise() {
        let t = line_graph(10);
        let queries = [NodeId(0), NodeId(4), NodeId(9)];
        let engine = RwrEngine::new(&t, RwrConfig::default()).unwrap();
        let batched = engine.solve_many(&queries).unwrap();
        let unbatched = engine.solve_many_unbatched(&queries).unwrap();
        assert_eq!(batched, unbatched);
    }

    #[test]
    fn block_stats_match_single_source_stats() {
        let t = line_graph(10);
        let queries = [NodeId(0), NodeId(9)];
        let cfg = RwrConfig {
            tolerance: Some(1e-6),
            max_iterations: 500,
            threads: 1,
            ..Default::default()
        };
        let engine = RwrEngine::new(&t, cfg).unwrap();
        let (matrix, stats) = engine.solve_block(&queries).unwrap();
        for (i, &q) in queries.iter().enumerate() {
            let (row, single) = engine.solve_single(q).unwrap();
            assert_eq!(stats[i], single, "query {i}");
            assert_eq!(matrix.row(i), &row[..], "query {i}");
        }
    }

    #[test]
    fn symmetric_normalization_gives_symmetric_scores() {
        // Appendix Variant 1: with S = D^{-1/2} W D^{-1/2}, r(i, j) = r(j, i).
        let mut b = GraphBuilder::new();
        for (a, bb, w) in [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 0.5), (2, 3, 1.5)] {
            b.add_edge(NodeId(a), NodeId(bb), w).unwrap();
        }
        let g = b.build().unwrap();
        let t = Transition::new(&g, Normalization::Symmetric);
        let engine = RwrEngine::new(&t, RwrConfig::default()).unwrap();
        let m = engine
            .solve_many(&[NodeId(0), NodeId(1), NodeId(2), NodeId(3)])
            .unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let a = m.score(i, NodeId(j as u32));
                let b = m.score(j, NodeId(i as u32));
                assert!((a - b).abs() < 1e-9, "r({i},{j})={a} vs r({j},{i})={b}");
            }
        }
    }
}
