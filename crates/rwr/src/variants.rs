//! Appendix variants of the goodness score.
//!
//! * **Variant 1 — manifold ranking** (Eq. 20): run the same iteration over
//!   the symmetric operator `S = D^{-1/2} W D^{-1/2}` instead of `W̃`. The
//!   scores stop being probabilities (rows no longer sum to 1) but become
//!   symmetric: `r(i, j) = r(j, i)`. This module only provides the
//!   convenience wrapper; the operator itself is
//!   [`ceps_graph::normalize::Normalization::Symmetric`].
//! * **Variant 2 — order statistics** (Eq. 21): combine individual scores by
//!   the `k`-th largest value instead of meeting probabilities —
//!   `min` for `AND`, `max` for `OR`.

use ceps_graph::{normalize::Normalization, CsrGraph, NodeId, Transition};

use crate::{Result, RwrConfig, RwrEngine, RwrError, ScoreMatrix};

/// Variant 1: individual scores by manifold ranking (Eq. 20).
///
/// Builds the symmetric operator and runs the standard iteration. The caller
/// keeps the returned matrix exactly like an RWR one; only its
/// interpretation changes (symmetric affinity, not a stationary
/// distribution).
///
/// # Errors
/// Propagates solver validation errors.
pub fn manifold_ranking_scores(
    graph: &CsrGraph,
    config: RwrConfig,
    queries: &[NodeId],
) -> Result<ScoreMatrix> {
    let s = Transition::new(graph, Normalization::Symmetric);
    let engine = RwrEngine::new(&s, config)?;
    engine.solve_many(queries)
}

/// Variant 2: the `k`-th order statistic of one node's column of individual
/// scores (Eq. 21): `k = Q` is `min` ("AND"), `k = 1` is `max` ("OR").
///
/// `probs` is `r(·, j)` for one node; `k` is 1-based.
pub fn kth_order_statistic(probs: &[f64], k: usize) -> f64 {
    assert!(
        k >= 1 && k <= probs.len(),
        "k = {k} out of 1..={}",
        probs.len()
    );
    let mut sorted = probs.to_vec();
    sorted.sort_unstable_by(|a, b| b.total_cmp(a));
    sorted[k - 1]
}

/// Combined scores for every node under the order-statistic variant.
///
/// # Errors
/// [`RwrError::BadSoftAndK`] unless `1 ≤ k ≤ Q`.
pub fn combine_order_statistic(scores: &ScoreMatrix, k: usize) -> Result<Vec<f64>> {
    let q = scores.query_count();
    if k == 0 || k > q {
        return Err(RwrError::BadSoftAndK { k, query_count: q });
    }
    let n = scores.node_count();
    let mut out = Vec::with_capacity(n);
    let mut col = vec![0f64; q];
    for j in 0..n {
        scores.column_into(NodeId::from_index(j), &mut col);
        out.push(kth_order_statistic(&col, k));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceps_graph::GraphBuilder;

    fn diamond() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for (x, y, w) in [
            (0, 1, 1.0),
            (0, 2, 2.0),
            (1, 3, 2.0),
            (2, 3, 1.0),
            (1, 2, 1.0),
        ] {
            b.add_edge(NodeId(x), NodeId(y), w).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn manifold_scores_are_symmetric() {
        let g = diamond();
        let queries: Vec<NodeId> = g.nodes().collect();
        let m = manifold_ranking_scores(&g, RwrConfig::default(), &queries).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let a = m.score(i, NodeId(j as u32));
                let b = m.score(j, NodeId(i as u32));
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn manifold_rows_do_not_sum_to_one() {
        // The appendix notes Σ_j r(i, j) ≠ 1 for Variant 1.
        let g = diamond();
        let m = manifold_ranking_scores(&g, RwrConfig::default(), &[NodeId(0)]).unwrap();
        let sum = m.row_sums()[0];
        assert!(
            (sum - 1.0).abs() > 1e-6,
            "row unexpectedly stochastic: {sum}"
        );
    }

    #[test]
    fn order_statistics_min_max_median() {
        let p = [0.4, 0.1, 0.9];
        assert_eq!(kth_order_statistic(&p, 1), 0.9);
        assert_eq!(kth_order_statistic(&p, 2), 0.4);
        assert_eq!(kth_order_statistic(&p, 3), 0.1);
    }

    #[test]
    fn combine_order_statistic_validates_and_computes() {
        let m = ScoreMatrix::new(
            vec![NodeId(0), NodeId(1)],
            vec![vec![0.5, 0.2], vec![0.1, 0.6]],
        )
        .unwrap();
        assert!(combine_order_statistic(&m, 0).is_err());
        assert!(combine_order_statistic(&m, 3).is_err());
        let min = combine_order_statistic(&m, 2).unwrap(); // "AND" = min
        assert_eq!(min, vec![0.1, 0.2]);
        let max = combine_order_statistic(&m, 1).unwrap(); // "OR" = max
        assert_eq!(max, vec![0.5, 0.6]);
    }

    #[test]
    #[should_panic(expected = "out of 1..=")]
    fn kth_order_statistic_panics_out_of_range() {
        let _ = kth_order_statistic(&[0.5], 2);
    }
}
