//! Property-based tests for the RWR engine and score combinators.

use ceps_graph::{normalize::Normalization, GraphBuilder, NodeId, Transition};
use ceps_rwr::{
    combine::{and, at_least_k, at_least_k_bruteforce, combine_rows, combine_scores, or},
    exact::solve_exact,
    push::forward_push,
    RwrConfig, RwrEngine,
};
use proptest::prelude::*;

/// Strategy: a connected random graph of 3..=20 nodes — a spanning path plus
/// random chords — with weights in (0.1, 10).
fn arb_connected_graph() -> impl Strategy<Value = ceps_graph::CsrGraph> {
    (3usize..=20).prop_flat_map(|n| {
        let chords = proptest::collection::vec((0..n, 0..n, 0.1f64..10.0), 0..2 * n);
        let spine = proptest::collection::vec(0.1f64..10.0, n - 1);
        (Just(n), spine, chords).prop_map(|(n, spine, chords)| {
            let mut b = GraphBuilder::with_nodes(n);
            for (i, w) in spine.iter().enumerate() {
                b.add_edge(NodeId(i as u32), NodeId(i as u32 + 1), *w)
                    .unwrap();
            }
            for (a, c, w) in chords {
                if a != c {
                    b.add_edge(NodeId(a as u32), NodeId(c as u32), w).unwrap();
                }
            }
            b.build().unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Power iteration with many iterations matches the dense closed form.
    #[test]
    fn power_iteration_matches_exact_solver(
        g in arb_connected_graph(),
        c in 0.1f64..0.9,
        alpha in 0.0f64..1.0,
        q_pick in 0usize..20,
    ) {
        let q = NodeId((q_pick % g.node_count()) as u32);
        let t = Transition::new(&g, Normalization::DegreePenalized { alpha });
        let exact = solve_exact(&t, c, &[q]).unwrap();
        let cfg = RwrConfig { c, max_iterations: 2000, tolerance: Some(1e-14), threads: 1 };
        let approx = RwrEngine::new(&t, cfg).unwrap().solve_many(&[q]).unwrap();
        for j in 0..g.node_count() {
            let d = (exact.row(0)[j] - approx.row(0)[j]).abs();
            prop_assert!(d < 1e-8, "node {j}: diff {d}");
        }
    }

    /// RWR rows are probability distributions on connected graphs.
    #[test]
    fn rwr_rows_are_distributions(g in arb_connected_graph(), q_pick in 0usize..20) {
        let q = NodeId((q_pick % g.node_count()) as u32);
        let t = Transition::new(&g, Normalization::ColumnStochastic);
        let m = RwrEngine::new(&t, RwrConfig::default()).unwrap().solve_many(&[q]).unwrap();
        let row = m.row(0);
        prop_assert!(row.iter().all(|&v| (0.0..=1.0 + 1e-12).contains(&v)));
        let sum: f64 = row.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }

    /// The Poisson-binomial DP equals exponential enumeration for all k.
    #[test]
    fn at_least_k_equals_bruteforce(
        probs in proptest::collection::vec(0.0f64..1.0, 1..8),
        k in 0usize..9,
    ) {
        let fast = at_least_k(&probs, k);
        let slow = at_least_k_bruteforce(&probs, k);
        prop_assert!((fast - slow).abs() < 1e-10, "k={k}: {fast} vs {slow}");
    }

    /// Meeting probability is monotone non-increasing in k (Eq. 8 intuition:
    /// requiring more particles can only lower the probability).
    #[test]
    fn meeting_probability_monotone_in_k(
        probs in proptest::collection::vec(0.0f64..1.0, 2..8),
    ) {
        for k in 1..probs.len() {
            prop_assert!(at_least_k(&probs, k) + 1e-12 >= at_least_k(&probs, k + 1));
        }
    }

    /// Combined scores never exceed the OR score and never fall below AND.
    #[test]
    fn combined_scores_bracketed(
        g in arb_connected_graph(),
        picks in proptest::collection::vec(0usize..20, 2..5),
    ) {
        let queries: Vec<NodeId> = picks
            .iter()
            .map(|&p| NodeId((p % g.node_count()) as u32))
            .collect();
        // Dedup to keep the query set well-formed.
        let mut queries = queries;
        queries.sort_unstable();
        queries.dedup();
        prop_assume!(queries.len() >= 2);

        let t = Transition::new(&g, Normalization::ColumnStochastic);
        let m = RwrEngine::new(&t, RwrConfig::default()).unwrap().solve_many(&queries).unwrap();
        let q = queries.len();
        let or = combine_scores(&m, 1).unwrap();
        let and = combine_scores(&m, q).unwrap();
        for mid_k in 1..=q {
            let mid = combine_scores(&m, mid_k).unwrap();
            for j in 0..g.node_count() {
                prop_assert!(mid[j] <= or[j] + 1e-12);
                prop_assert!(mid[j] + 1e-12 >= and[j]);
            }
        }
    }

    /// The batched block solve reproduces the per-source solves: every row
    /// of `solve_block`'s matrix (and its stats) must match the
    /// corresponding `solve_single` within 1e-12 — in fact bitwise, since
    /// the per-column arithmetic order is identical.
    #[test]
    fn solve_block_matches_solve_single(
        g in arb_connected_graph(),
        c in 0.1f64..0.9,
        alpha in 0.0f64..1.0,
        picks in proptest::collection::vec(0usize..20, 1..6),
    ) {
        let mut queries: Vec<NodeId> = picks
            .iter()
            .map(|&p| NodeId((p % g.node_count()) as u32))
            .collect();
        queries.sort_unstable();
        queries.dedup();
        let t = Transition::new(&g, Normalization::DegreePenalized { alpha });
        let cfg = RwrConfig { c, max_iterations: 60, tolerance: None, threads: 1 };
        let engine = RwrEngine::new(&t, cfg).unwrap();
        let (matrix, stats) = engine.solve_block(&queries).unwrap();
        for (i, &q) in queries.iter().enumerate() {
            let (row, single_stats) = engine.solve_single(q).unwrap();
            for j in 0..g.node_count() {
                let d = (matrix.row(i)[j] - row[j]).abs();
                prop_assert!(d < 1e-12, "query {i} node {j}: diff {d}");
                prop_assert_eq!(matrix.row(i)[j], row[j]);
            }
            prop_assert_eq!(stats[i], single_stats);
        }
    }

    /// Column freezing (tolerance-based early exit) never changes results:
    /// each frozen column holds exactly the value the per-source solve
    /// stops at, even when the other columns keep iterating.
    #[test]
    fn freezing_matches_per_source_early_stop(
        g in arb_connected_graph(),
        c in 0.1f64..0.9,
        tol_exp in 2u32..10,
        picks in proptest::collection::vec(0usize..20, 2..6),
    ) {
        let mut queries: Vec<NodeId> = picks
            .iter()
            .map(|&p| NodeId((p % g.node_count()) as u32))
            .collect();
        queries.sort_unstable();
        queries.dedup();
        prop_assume!(queries.len() >= 2);
        let t = Transition::new(&g, Normalization::ColumnStochastic);
        let cfg = RwrConfig {
            c,
            max_iterations: 500,
            tolerance: Some(10f64.powi(-(tol_exp as i32))),
            threads: 1,
        };
        let engine = RwrEngine::new(&t, cfg).unwrap();
        let (matrix, stats) = engine.solve_block(&queries).unwrap();
        for (i, &q) in queries.iter().enumerate() {
            let (row, single_stats) = engine.solve_single(q).unwrap();
            prop_assert_eq!(stats[i], single_stats, "query {}", i);
            for j in 0..g.node_count() {
                prop_assert_eq!(matrix.row(i)[j], row[j], "query {} node {}", i, j);
            }
        }
    }

    /// The row-sweeping combiner equals the per-node column combinators
    /// bitwise for every k — `and` at k = Q, `or` at k = 1, the Eq. 9 DP in
    /// between (auto-k relies on this interchangeability).
    #[test]
    fn combine_rows_matches_column_dp(
        g in arb_connected_graph(),
        picks in proptest::collection::vec(0usize..20, 2..6),
    ) {
        let mut queries: Vec<NodeId> = picks
            .iter()
            .map(|&p| NodeId((p % g.node_count()) as u32))
            .collect();
        queries.sort_unstable();
        queries.dedup();
        prop_assume!(queries.len() >= 2);
        let t = Transition::new(&g, Normalization::ColumnStochastic);
        let m = RwrEngine::new(&t, RwrConfig::default()).unwrap().solve_many(&queries).unwrap();
        let rows: Vec<&[f64]> = (0..queries.len()).map(|i| m.row(i)).collect();
        let mut out = vec![0f64; g.node_count()];
        let q = queries.len();
        for k in 1..=q {
            combine_rows(&rows, k, &mut out).unwrap();
            for j in 0..g.node_count() {
                let col: Vec<f64> = rows.iter().map(|r| r[j]).collect();
                let reference = if k == q {
                    and(&col)
                } else if k == 1 {
                    or(&col)
                } else {
                    at_least_k(&col, k)
                };
                prop_assert_eq!(out[j], reference, "k={} node {}", k, j);
            }
        }
    }

    /// Forward push stays within its self-reported residual bound of the
    /// exact solution, for any graph, source and threshold.
    #[test]
    fn forward_push_error_within_reported_residual(
        g in arb_connected_graph(),
        c in 0.1f64..0.9,
        q_pick in 0usize..20,
        eps_exp in 1u32..8,
    ) {
        let q = NodeId((q_pick % g.node_count()) as u32);
        let eps = 10f64.powi(-(eps_exp as i32));
        let t = Transition::new(&g, Normalization::ColumnStochastic);
        let exact = solve_exact(&t, c, &[q]).unwrap();
        let push = forward_push(&t, c, q, eps).unwrap();
        let l1: f64 = (0..g.node_count())
            .map(|j| (exact.row(0)[j] - push.scores[j]).abs())
            .sum();
        prop_assert!(l1 <= push.residual_mass + 1e-9,
            "l1 {l1} exceeds residual bound {}", push.residual_mass);
        // Mass conservation: settled + residual = 1 on connected graphs.
        let settled: f64 = push.scores.iter().sum();
        prop_assert!((settled + push.residual_mass - 1.0).abs() < 1e-9);
    }
}
