//! # ceps-viz
//!
//! Graphviz DOT rendering of center-piece subgraphs. The paper presents its
//! case studies (Figs. 1–3) as drawn subgraphs — query nodes highlighted,
//! edge thickness proportional to co-authorship strength. This crate
//! serializes a [`ceps_graph::Subgraph`] (or a full
//! [`ceps_core::CepsResult`]) in that style, for rendering with `dot -Tsvg`.
//!
//! Output is deterministic: nodes and edges are emitted in ascending id
//! order, so diffs on generated figures are meaningful.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use ceps_core::CepsResult;
use ceps_graph::{CsrGraph, NodeId, NodeLabels, Subgraph};

/// Styling options for DOT output.
#[derive(Debug, Clone)]
pub struct DotStyle {
    /// Graph name in the DOT header.
    pub name: String,
    /// Fill color for query nodes.
    pub query_color: String,
    /// Fill color for other nodes.
    pub node_color: String,
    /// Scale factor mapping edge weight to pen width.
    pub edge_width_scale: f64,
    /// Maximum pen width (strong co-authorships saturate).
    pub max_pen_width: f64,
    /// Show the combined score under each node label.
    pub show_scores: bool,
}

impl Default for DotStyle {
    fn default() -> Self {
        DotStyle {
            name: "ceps".into(),
            query_color: "gold".into(),
            node_color: "lightblue".into(),
            edge_width_scale: 0.6,
            max_pen_width: 6.0,
            show_scores: false,
        }
    }
}

/// Escapes a DOT string literal.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders a subgraph (with its parent-graph induced edges) as DOT.
///
/// `queries` are highlighted; `labels` (optional) supply display names;
/// `scores` (optional) are printed under names when
/// [`DotStyle::show_scores`] is set.
pub fn subgraph_to_dot(
    parent: &CsrGraph,
    subgraph: &Subgraph,
    queries: &[NodeId],
    labels: Option<&NodeLabels>,
    scores: Option<&[f64]>,
    style: &DotStyle,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph \"{}\" {{", escape(&style.name));
    let _ = writeln!(out, "  layout=neato;");
    let _ = writeln!(out, "  overlap=false;");
    let _ = writeln!(out, "  node [style=filled, fontname=\"Helvetica\"];");

    for v in subgraph.nodes() {
        let name = labels
            .map(|l| l.name(v))
            .unwrap_or_else(|| format!("node-{}", v.0));
        let label = match (style.show_scores, scores) {
            (true, Some(s)) => format!("{}\\n{:.2e}", escape(&name), s[v.index()]),
            _ => escape(&name),
        };
        let color = if queries.contains(&v) {
            &style.query_color
        } else {
            &style.node_color
        };
        let shape = if queries.contains(&v) {
            ", shape=doubleoctagon"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\", fillcolor={}{}];",
            v.0, label, color, shape
        );
    }

    for (a, b, w) in subgraph.induced_edges(parent) {
        let pen = (w * style.edge_width_scale).clamp(0.5, style.max_pen_width);
        let _ = writeln!(
            out,
            "  n{} -- n{} [penwidth={pen:.2}, label=\"{w}\"];",
            a.0, b.0
        );
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a full [`CepsResult`] with scores attached.
pub fn result_to_dot(
    parent: &CsrGraph,
    result: &CepsResult,
    queries: &[NodeId],
    labels: Option<&NodeLabels>,
    style: &DotStyle,
) -> String {
    subgraph_to_dot(
        parent,
        &result.subgraph,
        queries,
        labels,
        Some(&result.combined),
        style,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceps_graph::GraphBuilder;

    fn setup() -> (CsrGraph, Subgraph) {
        let mut b = GraphBuilder::new();
        b.add_edge(NodeId(0), NodeId(1), 2.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 7.0).unwrap();
        let g = b.build().unwrap();
        let s = Subgraph::from_nodes([NodeId(0), NodeId(1), NodeId(2)]);
        (g, s)
    }

    #[test]
    fn dot_contains_nodes_edges_and_highlight() {
        let (g, s) = setup();
        let dot = subgraph_to_dot(&g, &s, &[NodeId(0)], None, None, &DotStyle::default());
        assert!(dot.starts_with("graph \"ceps\" {"));
        assert!(dot.contains("n0 [label=\"node-0\", fillcolor=gold, shape=doubleoctagon];"));
        assert!(dot.contains("n1 [label=\"node-1\", fillcolor=lightblue];"));
        assert!(dot.contains("n0 -- n1"));
        assert!(dot.contains("n0 -- n2"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn edge_width_scales_and_saturates() {
        let (g, s) = setup();
        let dot = subgraph_to_dot(&g, &s, &[], None, None, &DotStyle::default());
        // Weight 7 * 0.6 = 4.2; weight 1 * 0.6 clamps up to 0.6.
        assert!(dot.contains("penwidth=4.20"));
        assert!(dot.contains("penwidth=0.60"));
        let tight = DotStyle {
            max_pen_width: 2.0,
            ..Default::default()
        };
        let dot = subgraph_to_dot(&g, &s, &[], None, None, &tight);
        assert!(dot.contains("penwidth=2.00"));
    }

    #[test]
    fn labels_and_scores_render() {
        let (g, s) = setup();
        let labels = NodeLabels::from_names(["Ada \"The\" Byron", "Grace", "Edsger"]);
        let scores = vec![0.5, 0.25, 0.125];
        let style = DotStyle {
            show_scores: true,
            ..Default::default()
        };
        let dot = subgraph_to_dot(&g, &s, &[NodeId(1)], Some(&labels), Some(&scores), &style);
        assert!(dot.contains("Ada \\\"The\\\" Byron"));
        assert!(dot.contains("5.00e-1"));
        assert!(dot.contains("doubleoctagon"));
    }

    #[test]
    fn output_is_deterministic() {
        let (g, s) = setup();
        let a = subgraph_to_dot(&g, &s, &[NodeId(0)], None, None, &DotStyle::default());
        let b = subgraph_to_dot(&g, &s, &[NodeId(0)], None, None, &DotStyle::default());
        assert_eq!(a, b);
    }
}
