//! Figure 3 scenario: a three-query `AND` center-piece across three
//! research communities, with the extraction paths explaining *why* each
//! center-piece is in the answer.
//!
//! ```text
//! cargo run --example coauthor_and_query
//! ```

use ceps_repro::ceps_graph::NodeId;
use ceps_repro::prelude::*;

fn main() {
    let data = CoauthorConfig::small().seed(21).generate();
    let repo = QueryRepository::from_graph(&data);

    // One hub from each of three communities (the paper uses Getoor /
    // Karypis / Pei, all graph researchers from different institutions).
    let queries = repo.sample_across_communities(3, 5);
    println!("queries:");
    for &q in &queries {
        println!(
            "  {} [community {}]",
            data.labels.name(q),
            data.community(q)
        );
    }

    let config = CepsConfig::default().budget(12).query_type(QueryType::And);
    let engine = CepsEngine::new(&data.graph, config).unwrap();
    let result = engine.run(&queries).unwrap();

    println!(
        "\ncenter-piece subgraph: {} nodes, connected = {}",
        result.subgraph.len(),
        result.subgraph.is_connected(&data.graph)
    );

    let mut pieces: Vec<NodeId> = result
        .subgraph
        .nodes()
        .filter(|v| !queries.contains(v))
        .collect();
    pieces.sort_by(|a, b| result.combined[b.index()].total_cmp(&result.combined[a.index()]));
    println!("\ncenter-pieces, best first:");
    for &v in &pieces {
        println!(
            "  {:<22} community {}  r(Q, j) = {:.3e}",
            data.labels.name(v),
            data.community(v),
            result.combined[v.index()]
        );
    }

    println!("\nwhy (key paths from each query to each chosen destination):");
    for path in result.paths.iter().take(9) {
        let names: Vec<String> = path.nodes.iter().map(|&v| data.labels.name(v)).collect();
        println!("  [query {}] {}", path.source_index, names.join(" -> "));
    }

    // The paper's observation: the central figures have strong direct or
    // short indirect ties to all three queries.
    if let Some(&best) = pieces.first() {
        let ties: Vec<String> = queries
            .iter()
            .map(|&q| {
                let w = data.graph.weight(best, q);
                match w {
                    Some(w) => format!("{}: direct, {w} papers", data.labels.name(q)),
                    None => format!("{}: indirect", data.labels.name(q)),
                }
            })
            .collect();
        println!(
            "\nbest center-piece {} ties: {}",
            data.labels.name(best),
            ties.join("; ")
        );
    }
}
