//! Section 6 scenario: Fast CePS (pre-partition, Table 5) vs plain CePS —
//! the speedup/quality trade-off behind the paper's 6:1 headline.
//!
//! ```text
//! cargo run --release --example fast_vs_full
//! ```

use std::time::Instant;

use ceps_repro::ceps_core::{eval, FastCeps};
use ceps_repro::prelude::*;

fn main() {
    // Timing demos want a bigger graph; generate ~10K authors.
    let data = CoauthorConfig::medium().seed(31).generate();
    let repo = QueryRepository::from_graph(&data);
    println!(
        "graph: {} authors, {} weighted edges",
        data.graph.node_count(),
        data.graph.edge_count()
    );

    let config = CepsConfig::default().budget(20).query_type(QueryType::And);
    let queries = repo.sample(3, 2);
    println!("queries: {}", queries.len());

    // Full-graph run.
    let engine = CepsEngine::new(&data.graph, config).unwrap();
    let t0 = Instant::now();
    let full = engine.run(&queries).unwrap();
    let full_time = t0.elapsed();
    println!(
        "\nfull graph: {full_time:.2?}, |H| = {}",
        full.subgraph.len()
    );

    // Fast CePS at several partition counts.
    println!(
        "\n{:>10}  {:>12}  {:>10}  {:>9}  {:>9}",
        "partitions", "offline", "online", "speedup", "RelRatio"
    );
    for p in [2usize, 4, 8, 16, 32] {
        let t1 = Instant::now();
        let fast = FastCeps::new(&data.graph, config, p, 17).unwrap();
        let offline = t1.elapsed();

        let t2 = Instant::now();
        let res = fast.run(&queries).unwrap();
        let online = t2.elapsed();

        let rel = eval::rel_ratio(&full.combined, &res.subgraph, &full.subgraph);
        let speedup = full_time.as_secs_f64() / online.as_secs_f64();
        println!("{p:>10}  {offline:>12.2?}  {online:>10.2?}  {speedup:>8.1}x  {rel:>9.3}");
    }

    println!(
        "\nThe offline partitioning is Table 5's one-time Step 0; online cost \
         shrinks with p because the random walk runs only on the partitions \
         containing the queries, at the price of missing goodness that lives \
         outside them (RelRatio < 1)."
    );
}
