//! Automatic `K_softAND` selection (the paper's future-work item 3):
//! leave-one-out retrieval infers whether a query set wants `AND`,
//! `OR`, or something in between — without the user supplying `k`.
//!
//! ```text
//! cargo run --example infer_k
//! ```

use ceps_repro::ceps_core::{infer_soft_and_k, QueryType};
use ceps_repro::prelude::*;

fn main() {
    let data = CoauthorConfig::small().seed(5).generate();
    let repo = QueryRepository::from_graph(&data);
    let engine = CepsEngine::new(&data.graph, CepsConfig::default()).unwrap();

    // Scenario A: a coherent query set — four hubs from ONE community.
    let coherent = repo.sample_within_community(4, 3);
    // Scenario B: a split query set — two hubs each from TWO communities.
    let split = vec![
        repo.group(0)[0],
        repo.group(0)[1],
        repo.group(1)[0],
        repo.group(1)[1],
    ];
    // Scenario C: fully scattered — one hub from each of four communities.
    let scattered = repo.sample_across_communities(4, 3);

    for (label, queries) in [
        ("coherent (one community)", coherent),
        ("split (2+2)", split),
        ("scattered (1+1+1+1)", scattered),
    ] {
        let inference = infer_soft_and_k(&engine, &queries).unwrap();
        println!("\n{label}:");
        for &q in &queries {
            println!(
                "  {} [community {}]",
                data.labels.name(q),
                data.community(q)
            );
        }
        println!(
            "  inferred k = {} (mean held-out retrieval ranks per k': {:?})",
            inference.k,
            inference
                .mean_ranks
                .iter()
                .map(|r| format!("{r:.1}"))
                .collect::<Vec<_>>()
        );

        // Run CePS with the inferred coefficient.
        let cfg = CepsConfig::default()
            .budget(8)
            .query_type(QueryType::SoftAnd(inference.k));
        let engine_k = CepsEngine::new(&data.graph, cfg).unwrap();
        let res = engine_k.run(&queries).unwrap();
        println!(
            "  {}_softAND subgraph: {} nodes, {} component(s)",
            inference.k,
            res.subgraph.len(),
            res.subgraph.component_count(&data.graph)
        );
    }

    println!(
        "\nInterpretation: coherent query sets reward strict combination \
         (k near Q); query sets spanning communities are better served by \
         a softer k that only demands closeness to each query's own cluster."
    );
}
