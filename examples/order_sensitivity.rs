//! Figure 2 scenario: the delivered-current connection subgraph vs CePS on
//! the same query pair, in both query orders.
//!
//! The paper's point: the electrical baseline assigns the two queries
//! different roles (+1 V source vs 0 V sink), so swapping them can change
//! the output; CePS treats the queries as an unordered set and cannot.
//!
//! ```text
//! cargo run --example order_sensitivity
//! ```

use ceps_baselines::delivered_current::{connection_subgraph, DeliveredCurrentConfig};
use ceps_repro::ceps_graph::NodeId;
use ceps_repro::prelude::*;

fn main() {
    let data = CoauthorConfig::small().seed(3).generate();
    let repo = QueryRepository::from_graph(&data);

    // Search a few hub pairs for one where the electrical method flips; on
    // real data (the paper's Soumen Chakrabarti / Raymond Ng example) such
    // pairs are easy to find.
    let mut witness = None;
    'search: for seed in 0..50u64 {
        let qs = repo.sample_across_communities(2, seed);
        let cfg = DeliveredCurrentConfig {
            budget: 4,
            ..Default::default()
        };
        let (Ok(fwd), Ok(rev)) = (
            connection_subgraph(&data.graph, qs[0], qs[1], &cfg),
            connection_subgraph(&data.graph, qs[1], qs[0], &cfg),
        ) else {
            continue;
        };
        let f: Vec<NodeId> = fwd.subgraph.nodes().collect();
        let r: Vec<NodeId> = rev.subgraph.nodes().collect();
        if f != r {
            witness = Some((qs, f, r));
            break 'search;
        }
    }

    let Some((qs, dc_fwd, dc_rev)) = witness else {
        println!("no order-sensitive pair found in 50 draws (unusual — try another seed)");
        return;
    };
    let name = |v: NodeId| data.labels.name(v);
    let list = |vs: &[NodeId]| vs.iter().map(|&v| name(v)).collect::<Vec<_>>().join(", ");

    println!(
        "connection subgraph between {} and {} (budget 4)\n",
        name(qs[0]),
        name(qs[1])
    );
    println!(
        "delivered current, {} as +1V source:\n  {}",
        name(qs[0]),
        list(&dc_fwd)
    );
    println!(
        "delivered current, {} as +1V source:\n  {}",
        name(qs[1]),
        list(&dc_rev)
    );
    let common = dc_fwd.iter().filter(|v| dc_rev.contains(v)).count();
    println!("  -> differs with query order ({common} nodes shared)\n");

    let config = CepsConfig::default().budget(4).query_type(QueryType::And);
    let engine = CepsEngine::new(&data.graph, config).unwrap();
    let ceps_fwd: Vec<NodeId> = engine.run(&qs).unwrap().subgraph.nodes().collect();
    let ceps_rev: Vec<NodeId> = engine
        .run(&[qs[1], qs[0]])
        .unwrap()
        .subgraph
        .nodes()
        .collect();
    println!("CePS AND, either order:\n  {}", list(&ceps_fwd));
    assert_eq!(ceps_fwd, ceps_rev, "CePS must be order-independent");
    println!("  -> identical in both orders (queries are an unordered set)");
}
