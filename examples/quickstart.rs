//! Quickstart: generate a co-authorship graph, ask for the center-piece
//! subgraph between two researchers, print it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ceps_repro::prelude::*;

fn main() {
    // 1. A graph. Here: a synthetic co-authorship network with four research
    //    communities (use `GraphBuilder` directly for your own data).
    let data = CoauthorConfig::small().seed(42).generate();
    println!(
        "graph: {} authors, {} weighted edges",
        data.graph.node_count(),
        data.graph.edge_count()
    );

    // 2. A query set: two productive authors from different communities.
    let repo = QueryRepository::from_graph(&data);
    let queries = repo.sample_across_communities(2, 7);
    println!(
        "queries: {} and {}",
        data.labels.name(queries[0]),
        data.labels.name(queries[1])
    );

    // 3. Run CePS: AND query (nodes must be close to BOTH queries),
    //    budget of 10 intermediate nodes. Defaults follow the paper:
    //    c = 0.5, m = 50 RWR iterations, degree-penalization alpha = 0.5.
    let config = CepsConfig::default().budget(10).query_type(QueryType::And);
    let engine = CepsEngine::new(&data.graph, config).expect("valid configuration");
    let result = engine.run(&queries).expect("valid query set");

    // 4. Inspect the result.
    println!("\ncenter-piece subgraph ({} nodes):", result.subgraph.len());
    let mut members: Vec<_> = result.subgraph.nodes().collect();
    members.sort_by(|a, b| result.combined[b.index()].total_cmp(&result.combined[a.index()]));
    for v in members {
        let marker = if queries.contains(&v) { " (query)" } else { "" };
        println!(
            "  {:<22} r(Q, j) = {:.3e}{marker}",
            data.labels.name(v),
            result.combined[v.index()]
        );
    }

    println!("\nkey paths that built the subgraph:");
    for path in &result.paths {
        let names: Vec<String> = path.nodes.iter().map(|&v| data.labels.name(v)).collect();
        println!("  {}", names.join(" -> "));
    }

    println!(
        "\nextracted goodness g(H) = {:.4e}, connected = {}",
        result.extracted_goodness(),
        result.subgraph.is_connected(&data.graph)
    );
}
