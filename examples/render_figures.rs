//! Renders the three case studies (Figs. 1–3) as Graphviz DOT files under
//! `figures/`, in the paper's visual style: query nodes highlighted,
//! edge width proportional to co-authored paper count.
//!
//! ```text
//! cargo run --example render_figures
//! dot -Tsvg figures/fig3_and.dot -o fig3.svg   # if graphviz is installed
//! ```

use std::fs;

use ceps_repro::ceps_viz::{result_to_dot, DotStyle};
use ceps_repro::prelude::*;

fn main() {
    let data = CoauthorConfig::small().seed(11).generate();
    let repo = QueryRepository::from_graph(&data);
    fs::create_dir_all("figures").expect("create figures/");

    let render = |name: &str, queries: &[ceps_repro::ceps_graph::NodeId], qt, budget| {
        let cfg = CepsConfig::default().budget(budget).query_type(qt);
        let engine = CepsEngine::new(&data.graph, cfg).unwrap();
        let result = engine.run(queries).unwrap();
        let style = DotStyle {
            name: name.to_string(),
            show_scores: true,
            ..Default::default()
        };
        let dot = result_to_dot(&data.graph, &result, queries, Some(&data.labels), &style);
        let path = format!("figures/{name}.dot");
        fs::write(&path, dot).expect("write dot file");
        println!(
            "{path}: {} nodes, {} components",
            result.subgraph.len(),
            result.subgraph.component_count(&data.graph)
        );
    };

    // Fig. 1: four queries from two communities, AND vs 2_softAND.
    let fig1_queries = vec![
        repo.group(0)[0],
        repo.group(0)[1],
        repo.group(1)[0],
        repo.group(1)[1],
    ];
    render("fig1_and", &fig1_queries, QueryType::And, 8);
    render("fig1_2softand", &fig1_queries, QueryType::SoftAnd(2), 8);

    // Fig. 2: pairwise connection subgraph.
    let fig2_queries = repo.sample_across_communities(2, 7);
    render("fig2_connection", &fig2_queries, QueryType::And, 4);

    // Fig. 3: three queries, three communities.
    let fig3_queries = repo.sample_across_communities(3, 5);
    render("fig3_and", &fig3_queries, QueryType::And, 12);

    println!("\nrender with: dot -Tsvg figures/<name>.dot -o <name>.svg");
}
