//! Figure 1 scenario: four queries, two per community, comparing the
//! `AND` query against `2_softAND`.
//!
//! The paper's observation (Fig. 1): with queries {Agrawal, Han} from the
//! database community and {Jordan, Vapnik} from statistical ML,
//! `2_softAND` returns two clean per-community groups, while `AND`
//! returns the cross-disciplinary bridges tying all four together.
//!
//! ```text
//! cargo run --example softand_communities
//! ```

use ceps_repro::ceps_graph::NodeId;
use ceps_repro::prelude::*;

fn main() {
    let data = CoauthorConfig::small().seed(11).generate();
    let repo = QueryRepository::from_graph(&data);

    // Two database-community hubs + two ML-community hubs.
    let queries = vec![
        repo.group(0)[0],
        repo.group(0)[1],
        repo.group(1)[0],
        repo.group(1)[1],
    ];
    println!("queries (community 0 and community 1 hubs):");
    for &q in &queries {
        println!(
            "  {} [community {}]",
            data.labels.name(q),
            data.community(q)
        );
    }

    for (label, qt) in [
        ("AND", QueryType::And),
        ("2_softAND", QueryType::SoftAnd(2)),
    ] {
        let config = CepsConfig::default().budget(10).query_type(qt);
        let engine = CepsEngine::new(&data.graph, config).unwrap();
        let result = engine.run(&queries).unwrap();

        let components = result.subgraph.component_count(&data.graph);
        println!(
            "\n{label} query: {} nodes, {} connected component(s)",
            result.subgraph.len(),
            components
        );

        // Community breakdown of the non-query members.
        let mut per_community = [0usize; 4];
        for v in result.subgraph.nodes() {
            if !queries.contains(&v) {
                per_community[data.community(v) as usize] += 1;
            }
        }
        println!("  members per community: {per_community:?}");
        let mut members: Vec<NodeId> = result
            .subgraph
            .nodes()
            .filter(|v| !queries.contains(v))
            .collect();
        members.sort_by(|a, b| result.combined[b.index()].total_cmp(&result.combined[a.index()]));
        for v in members.iter().take(10) {
            println!(
                "  {:<22} community {}  r(Q, j) = {:.3e}",
                data.labels.name(*v),
                data.community(*v),
                result.combined[v.index()]
            );
        }
    }

    println!(
        "\nInterpretation: softAND members need closeness to only 2 of the 4 \
         queries, so each community keeps its own group; AND members must \
         reach all four, which only cross-community collaborators do."
    );
}
