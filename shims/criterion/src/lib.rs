//! Hermetic stand-in for the `criterion` crate.
//!
//! Provides the harness surface the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! `criterion_group!`, `criterion_main!` — with a simple measurement loop:
//! estimate the cost of one iteration, batch iterations into fixed-duration
//! samples, and report the mean/min/max ns per iteration. There is no
//! statistical analysis, HTML report, or saved baseline.
//!
//! `cargo bench -- --test` (what CI's bench-smoke runs) executes each
//! benchmark body exactly once, as real criterion does.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Target wall-clock duration of one measurement sample.
const SAMPLE_TARGET_NS: u128 = 5_000_000;
/// Cap on measurement samples per benchmark, regardless of `sample_size`.
const MAX_SAMPLES: usize = 30;

/// Benchmark registry/driver; construct via [`Criterion::from_args`]
/// (normally done by `criterion_main!`).
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    /// Builds a driver from the process arguments. Recognizes `--test`
    /// (smoke mode: run each body once) and a positional substring filter;
    /// harness flags cargo passes (`--bench`, etc.) are ignored.
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.test_mode = true,
                s if s.starts_with('-') => {}
                s => c.filter = Some(s.to_string()),
            }
        }
        c
    }

    /// Opens a named group; benchmark ids are prefixed with `name/`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = id.into_benchmark_id();
        self.run(&full, 20, f);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, full_id: &str, sample_size: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !full_id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            smoke: self.test_mode,
            sample_size: sample_size.min(MAX_SAMPLES).max(2),
            report: None,
        };
        f(&mut b);
        match b.report {
            None => println!("{full_id}: no measurement (b.iter never called)"),
            Some(r) if self.test_mode => {
                let _ = r;
                println!("{full_id}: ok (smoke)");
            }
            Some(r) => println!(
                "{full_id}: {:.1} ns/iter (min {:.1}, max {:.1}, {} samples x {} iters)",
                r.mean_ns, r.min_ns, r.max_ns, r.samples, r.iters_per_sample
            ),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples (capped internally).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        self.criterion.run(&full, self.sample_size, f);
        self
    }

    /// Runs a benchmark that borrows a shared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (a no-op here; results print as they complete).
    pub fn finish(self) {}
}

/// Identifies one benchmark as `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark id.
pub trait IntoBenchmarkId {
    /// Renders the id string.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

struct Report {
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

/// Timing loop handle passed to each benchmark body.
pub struct Bencher {
    smoke: bool,
    sample_size: usize,
    report: Option<Report>,
}

impl Bencher {
    /// Measures `f`. In smoke mode runs it once; otherwise estimates its
    /// cost, batches iterations into ~fixed-duration samples, and records
    /// mean/min/max ns per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke {
            let _ = std::hint::black_box(f());
            self.report = Some(Report {
                mean_ns: 0.0,
                min_ns: 0.0,
                max_ns: 0.0,
                samples: 0,
                iters_per_sample: 1,
            });
            return;
        }
        // Warmup + estimate.
        let start = Instant::now();
        let _ = std::hint::black_box(f());
        let est_ns = start.elapsed().as_nanos().max(1);
        let iters = (SAMPLE_TARGET_NS / est_ns).clamp(1, 10_000_000) as u64;

        let mut per_iter = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                let _ = std::hint::black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64;
            per_iter.push(ns / iters as f64);
        }
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
        self.report = Some(Report {
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
            samples: per_iter.len(),
            iters_per_sample: iters,
        });
    }
}

/// Bundles benchmark functions into a group runner, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main` running the given groups with an arg-parsed driver.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
        };
        let mut calls = 0u32;
        c.bench_function("unit/smoke", |b| {
            b.iter(|| calls += 1);
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut c = Criterion {
            test_mode: true,
            filter: Some("wanted".into()),
        };
        let mut ran = false;
        c.bench_function("other/name", |b| {
            ran = true;
            b.iter(|| ());
        });
        assert!(!ran);
        c.benchmark_group("wanted").bench_with_input(
            BenchmarkId::new("case", 5),
            &5usize,
            |b, &n| {
                ran = true;
                b.iter(|| n * 2);
            },
        );
        assert!(ran);
    }

    #[test]
    fn measured_mode_reports_positive_time() {
        let mut c = Criterion {
            test_mode: false,
            filter: None,
        };
        let mut g = c.benchmark_group("unit");
        g.sample_size(2);
        g.bench_function("spin", |b| {
            b.iter(|| std::hint::black_box((0..64u64).sum::<u64>()))
        });
        g.finish();
    }
}
