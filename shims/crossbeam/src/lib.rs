//! Hermetic stand-in for the `crossbeam` crate (0.8 API subset).
//!
//! Only `crossbeam::thread::scope` is provided, implemented on top of
//! `std::thread::scope` (stable since Rust 1.63), which gives the same
//! borrow-the-stack guarantees the workspace relies on for its parallel
//! row-chunked kernels.

#![forbid(unsafe_code)]

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result alias matching `crossbeam::thread`: the error is the payload
    /// of a worker panic.
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handle passed to [`scope`]'s closure; spawn workers off it.
    ///
    /// Workers may borrow anything that outlives the scope ('env data).
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the worker and returns its result (`Err` holds the
        /// panic payload if it panicked).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a worker inside the scope. As in crossbeam, the closure
        /// receives the scope itself (for nested spawns).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be spawned;
    /// all workers are joined before `scope` returns. Returns `Err` with the
    /// panic payload if the closure or an unjoined worker panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_workers_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4, 5, 6, 7, 8];
        let mut out = vec![0u64; 2];
        thread::scope(|s| {
            let (lo, hi) = out.split_at_mut(1);
            let h1 = s.spawn(|_| data[..4].iter().sum::<u64>());
            let h2 = s.spawn(|_| data[4..].iter().sum::<u64>());
            lo[0] = h1.join().unwrap();
            hi[0] = h2.join().unwrap();
        })
        .unwrap();
        assert_eq!(out, vec![10, 26]);
    }

    #[test]
    fn worker_panic_is_captured_by_join() {
        let res = thread::scope(|s| {
            let h = s.spawn(|_| -> usize { panic!("boom") });
            h.join()
        })
        .unwrap();
        assert!(res.is_err());
    }

    #[test]
    fn closure_panic_is_captured_by_scope() {
        let res = thread::scope(|_| -> usize { panic!("outer") });
        assert!(res.is_err());
    }
}
