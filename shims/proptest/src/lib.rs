//! Hermetic stand-in for the `proptest` crate.
//!
//! Same surface the workspace's property tests use — [`Strategy`] with
//! `prop_map`/`prop_flat_map`, range and tuple strategies, [`Just`],
//! [`collection::vec`], `proptest!`/`prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, and [`ProptestConfig::with_cases`] — with two behavioral
//! differences:
//!
//! * cases are generated from a fixed seed (deterministic across runs, no
//!   `PROPTEST_*` env handling);
//! * no shrinking: a failing case panics with the assertion message via the
//!   standard test harness instead of a minimized counterexample.
//!
//! `prop_assume!` returns early from the generated per-case closure, so an
//! assumption failure simply skips that case.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// A source of random test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec`s with element strategy `elem` and a length drawn
    /// from `size` (a `usize` for an exact length, or a `Range<usize>`).
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Length bounds for collection strategies: `lo..hi` (half-open).
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub lo: usize,
    /// Exclusive upper bound.
    pub hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Runner configuration (only the case count is honored).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Drives a property over `config.cases` deterministic seeded cases.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Creates a runner with the given configuration.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs `test` against `config.cases` generated inputs. A panic inside
    /// `test` propagates (the test harness reports it); there is no
    /// shrinking pass.
    pub fn run<S: Strategy>(&mut self, strategy: &S, mut test: impl FnMut(S::Value)) {
        for case in 0..u64::from(self.config.cases) {
            // Distinct, reproducible stream per case.
            let mut rng = StdRng::seed_from_u64(0xcafe_f00d ^ case.wrapping_mul(0x9e37_79b9));
            test(strategy.generate(&mut rng));
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; munches one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __strategy = ($($strat,)+);
            $crate::TestRunner::new($config).run(&__strategy, |__case| {
                let ($($pat,)+) = __case;
                // The block runs inside this closure so `prop_assume!`'s
                // early `return` skips just this case.
                $body
            });
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Skips the current case when the assumption doesn't hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, Vec<f64>)> {
        (2usize..=9).prop_flat_map(|n| {
            let xs = crate::collection::vec(0.5f64..2.0, 1..n + 1);
            (Just(n), xs).prop_map(|(n, xs)| (n, xs))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(n in 2usize..=24, x in 0.1f64..100.0) {
            prop_assert!((2..=24).contains(&n));
            prop_assert!((0.1..100.0).contains(&x), "x = {x}");
        }

        #[test]
        fn flat_map_lengths_track_outer(pair in arb_pair()) {
            let (n, xs) = pair;
            prop_assert!(!xs.is_empty() && xs.len() <= n);
            prop_assert_eq!(xs.len(), xs.len());
        }

        #[test]
        fn assume_skips_cases(n in 0usize..10) {
            prop_assume!(n >= 5);
            prop_assert!(n >= 5);
        }
    }

    #[test]
    fn exact_vec_size() {
        let mut runner = crate::TestRunner::new(ProptestConfig::with_cases(8));
        let strat = crate::collection::vec(0.0f64..1.0, 7usize);
        runner.run(&(strat,), |(v,)| assert_eq!(v.len(), 7));
    }

    #[test]
    fn cases_are_deterministic() {
        let collect = || {
            let mut out = Vec::new();
            let mut runner = crate::TestRunner::new(ProptestConfig::with_cases(16));
            runner.run(&(0u64..1_000_000,), |(v,)| out.push(v));
            out
        };
        assert_eq!(collect(), collect());
    }
}
