//! Hermetic stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides a deterministic xoshiro256++ generator behind the `StdRng`
//! name plus the `Rng`, `SeedableRng` and `seq::SliceRandom` traits the
//! workspace uses. The stream differs from upstream rand's ChaCha12-based
//! `StdRng`, but is stable across runs and platforms for a given seed,
//! which is what the generators and partitioner need.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform random bits.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling interface, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform sample from a range (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        sample_f64(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Uniform f64 in `[0, 1)` using the top 53 bits.
fn sample_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform u64 in `[0, bound)` without modulo bias (Lemire-style rejection).
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let r = rng.next_u64();
        let (hi, lo) = widening_mul(r, bound);
        if lo >= threshold {
            return hi;
        }
    }
}

fn widening_mul(a: u64, b: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128);
    ((wide >> 64) as u64, wide as u64)
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + sample_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + sample_below(rng, span + 1) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + sample_f64(rng) * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Slice sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element (`None` on an empty slice).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..100).all(|_| {
            StdRng::seed_from_u64(7);
            a.gen_range(0..1000usize) == c.gen_range(0..1000usize)
        });
        assert!(!same, "different seeds should diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20usize);
            assert!((10..20).contains(&v));
            let v = rng.gen_range(3..=5usize);
            assert!((3..=5).contains(&v));
            let f = rng.gen_range(0.5..2.5f64);
            assert!((0.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
