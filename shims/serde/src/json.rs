//! The JSON value tree and its text representation.
//!
//! Lives in the `serde` shim (rather than `serde_json`) so both shims can
//! share one `Value` type; `serde_json` re-exports it.

use std::fmt;

/// An owned JSON document.
///
/// Objects preserve insertion order (a `Vec` of pairs, not a map), so
/// serialized output is stable and matches the field order of derives.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64; integers print without a fraction).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

/// Serialization/deserialization error (a message plus nothing else).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// Standard "expected X, found Y" error.
    pub fn type_mismatch(expected: &str, found: &Value) -> Self {
        Error::new(format!("expected {expected}, found {}", found.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Member lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// `&Vec<Value>` if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// `&str` if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// `f64` if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// `u64` if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// `i64` if this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n)
                if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 =>
            {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// `bool` if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Compact one-line JSON text.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty-printed JSON text (two-space indent).
    pub fn to_json_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => write_number(out, *n),
            Value::String(s) => write_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    /// [`Error`] with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Value, Error> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
        }
        Ok(v)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() && n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        // Integral numbers print as integers (matches serde_json for the
        // integer types the workspace serializes).
        let _ = fmt::Write::write_fmt(out, format_args!("{}", n as i64));
    } else if n.is_finite() {
        let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
    } else {
        // serde_json emits null for non-finite floats.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::new(format!(
                "unexpected character {:?} at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(Error::new("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = rest
                        .get(1)
                        .copied()
                        .ok_or_else(|| Error::new("unterminated escape sequence"))?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are rare in this workspace's
                            // data; handle the common BMP case and pair up
                            // surrogates when both halves are present.
                            if (0xD800..0xDC00).contains(&code) {
                                if self.eat_literal("\\u") {
                                    let hex2 = self
                                        .bytes
                                        .get(self.pos..self.pos + 4)
                                        .and_then(|h| std::str::from_utf8(h).ok())
                                        .ok_or_else(|| Error::new("bad \\u escape"))?;
                                    let low = u32::from_str_radix(hex2, 16)
                                        .map_err(|_| Error::new("bad \\u escape"))?;
                                    self.pos += 4;
                                    let c = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00));
                                    out.push(
                                        char::from_u32(c)
                                            .ok_or_else(|| Error::new("bad surrogate pair"))?,
                                    );
                                } else {
                                    return Err(Error::new("lone surrogate"));
                                }
                            } else {
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error::new("bad \\u escape"))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape \\{}", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 encoded char.
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::new(format!("invalid number {text:?} at byte {start}")))
    }
}

// ---------------------------------------------------------------------------
// Ergonomics used by tests and CLI consumers
// ---------------------------------------------------------------------------

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Member access; missing keys and non-objects index to `Null`
    /// (mirroring `serde_json`).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_i64() == Some(i64::from(*other))
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_compact() {
        let text = r#"{"a":[1,2.5,null,true],"b":{"c":"hi \"there\"","d":-3e2}}"#;
        let v = Value::parse(text).unwrap();
        assert_eq!(v["a"][1], 2.5);
        assert_eq!(v["b"]["c"], "hi \"there\"");
        assert_eq!(v["b"]["d"], -300.0);
        let back = Value::parse(&v.to_json_string()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_output_is_parseable_and_indented() {
        let v = Value::Object(vec![
            ("x".into(), Value::Number(1.0)),
            ("y".into(), Value::Array(vec![Value::Bool(false)])),
        ]);
        let pretty = v.to_json_string_pretty();
        assert!(pretty.contains("\n  \"x\": 1"));
        assert_eq!(Value::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Value::Number(42.0).to_json_string(), "42");
        assert_eq!(Value::Number(-0.5).to_json_string(), "-0.5");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(Value::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn missing_members_index_to_null() {
        let v = Value::parse(r#"{"a":1}"#).unwrap();
        assert!(v["missing"].is_null());
        assert!(v["a"]["deeper"].is_null());
    }

    #[test]
    fn unicode_escapes() {
        let v = Value::parse(r#""Aé""#).unwrap();
        assert_eq!(v, "Aé");
    }
}
