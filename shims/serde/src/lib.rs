//! Hermetic stand-in for the `serde` crate.
//!
//! Real serde is a zero-copy data-model/visitor framework; this workspace
//! only ever serializes to and from JSON text, so the shim collapses the
//! model to an owned [`json::Value`] tree:
//!
//! * [`Serialize`] renders a type into a `Value`;
//! * [`Deserialize`] rebuilds a type from a `&Value`;
//! * the `serde_json` shim handles `Value` ⇄ text.
//!
//! The `derive` feature re-exports `Serialize`/`Deserialize` derive macros
//! (from the `serde_derive` shim) that understand named/tuple structs,
//! externally-tagged enums, transparent single-field newtypes, and the
//! `#[serde(skip)]` field attribute — the full set of shapes the workspace
//! derives on.

#![forbid(unsafe_code)]

pub mod json;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use json::{Error, Value};

/// Types that can render themselves into a JSON [`Value`].
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds from a value tree.
    ///
    /// # Errors
    /// [`Error`] describing the first shape/type mismatch encountered.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(f64::from(*self))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0)); // deterministic output
        Value::Object(entries)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::type_mismatch("bool", other)),
        }
    }
}

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) if n.fract() == 0.0 => {
                        let min = <$t>::MIN as f64;
                        let max = <$t>::MAX as f64;
                        if *n >= min && *n <= max {
                            Ok(*n as $t)
                        } else {
                            Err(Error::new(format!(
                                "integer {n} out of range for {}",
                                stringify!($t)
                            )))
                        }
                    }
                    other => Err(Error::type_mismatch(stringify!($t), other)),
                }
            }
        }
    )*};
}

deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(*n),
            other => Err(Error::type_mismatch("f64", other)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|n| n as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::type_mismatch("string", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::type_mismatch("array", other)),
        }
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::type_mismatch("array", other)),
        }
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(Error::type_mismatch("object", other)),
        }
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(Error::type_mismatch("object", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::json::Value;
    use super::{Deserialize, Serialize};

    #[test]
    fn scalar_round_trips() {
        assert_eq!(42u32.to_value(), Value::Number(42.0));
        assert_eq!(u32::from_value(&Value::Number(42.0)).unwrap(), 42);
        assert!(u8::from_value(&Value::Number(300.0)).is_err());
        assert!(u32::from_value(&Value::Number(1.5)).is_err());
        assert!(u32::from_value(&Value::String("x".into())).is_err());
        assert_eq!(
            String::from_value(&Value::String("hi".into())).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3].to_value();
        assert_eq!(Vec::<u32>::from_value(&v).unwrap(), vec![1, 2, 3]);
        let set: std::collections::BTreeSet<u32> = [3, 1, 2].into_iter().collect();
        let back: std::collections::BTreeSet<u32> =
            Deserialize::from_value(&set.to_value()).unwrap();
        assert_eq!(back, set);
    }
}
