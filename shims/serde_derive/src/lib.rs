//! Hermetic stand-in for `serde_derive`.
//!
//! Hand-rolled over `proc_macro` (no syn/quote, which aren't vendored).
//! The generated impls target the shim's value-tree model:
//! `Serialize::to_value(&self) -> serde::json::Value` and
//! `Deserialize::from_value(&Value) -> Result<Self, Error>`.
//!
//! Supported input shapes — the full set this workspace derives on:
//! * named structs (optionally generic; type params get the trait bound added);
//! * tuple structs — a single (non-skipped) field serializes transparently,
//!   as serde does for newtypes and `#[serde(transparent)]`;
//! * externally tagged enums with unit, tuple, and struct variants;
//! * the `#[serde(skip)]` field attribute (omitted on write, defaulted on read);
//! * the `#[serde(default)]` field attribute on named fields — of structs
//!   and struct variants — which tolerates a missing key on read (the field
//!   is `Default::default()`ed) while still serializing normally on write.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree flavor).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_serialize(&input)
        .parse()
        .expect("serde_derive shim generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (value-tree flavor).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_deserialize(&input)
        .parse()
        .expect("serde_derive shim generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsed representation
// ---------------------------------------------------------------------------

struct Input {
    name: String,
    params: Vec<Param>,
    where_clause: String,
    data: Data,
}

struct Param {
    is_lifetime: bool,
    name: String,
    bounds: String,
}

struct NamedField {
    name: String,
    skip: bool,
    /// `#[serde(default)]`: a missing key deserializes to
    /// `Default::default()` instead of erroring.
    default: bool,
}

enum Data {
    Named(Vec<NamedField>),
    /// Tuple struct: per-position skip flags.
    Tuple(Vec<bool>),
    Unit,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<NamedField>),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

#[derive(Default)]
struct AttrInfo {
    skip: bool,
    default: bool,
}

/// Consumes leading `#[...]` attributes, noting `#[serde(skip)]` and
/// `#[serde(default)]`.
fn take_attrs(tokens: &[TokenTree], i: &mut usize) -> AttrInfo {
    let mut info = AttrInfo::default();
    while *i < tokens.len() {
        let TokenTree::Punct(p) = &tokens[*i] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[*i + 1] else {
            panic!("expected [...] after #")
        };
        assert_eq!(
            g.delimiter(),
            Delimiter::Bracket,
            "expected #[...] attribute"
        );
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    for t in args.stream() {
                        if let TokenTree::Ident(arg) = t {
                            match arg.to_string().as_str() {
                                "skip" => info.skip = true,
                                "default" => info.default = true,
                                // `transparent`, `rename`, … are accepted
                                // and ignored; newtype serialization is
                                // already transparent in this shim.
                                _ => {}
                            }
                        }
                    }
                }
            }
        }
        *i += 2;
    }
    info
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, …) if present.
fn take_vis(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match &tokens[*i] {
        TokenTree::Ident(id) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other}"),
    }
}

fn tokens_text(tokens: &[TokenTree]) -> String {
    tokens.iter().cloned().collect::<TokenStream>().to_string()
}

/// Splits a token list at top-level commas (commas nested in `<...>` or any
/// delimited group don't split).
fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Parses `<...>` generic parameters starting at `tokens[*i] == '<'`.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<Param> {
    *i += 1; // past '<'
    let mut depth = 1i32;
    let mut inner: Vec<TokenTree> = Vec::new();
    while *i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*i] {
            match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        *i += 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        inner.push(tokens[*i].clone());
        *i += 1;
    }
    split_commas(&inner)
        .into_iter()
        .map(|param| {
            let is_lifetime =
                matches!(param.first(), Some(TokenTree::Punct(p)) if p.as_char() == '\'');
            let mut j = if is_lifetime { 1 } else { 0 };
            let raw_name = expect_ident(&param, &mut j);
            let name = if is_lifetime {
                format!("'{raw_name}")
            } else {
                raw_name
            };
            // Anything after ':' is the declared bound list.
            let bounds = param
                .iter()
                .position(|t| matches!(t, TokenTree::Punct(p) if p.as_char() == ':'))
                .map(|colon| tokens_text(&param[colon + 1..]))
                .unwrap_or_default();
            Param {
                is_lifetime,
                name,
                bounds,
            }
        })
        .collect()
}

fn parse_input(ts: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    take_attrs(&tokens, &mut i);
    take_vis(&tokens, &mut i);
    let kw = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    let mut params = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            params = parse_generics(&tokens, &mut i);
        }
    }

    // Whatever sits between the generics and the body/terminator is a where
    // clause (or, for tuple structs, follows the parens) — re-emit verbatim.
    let mut where_clause = Vec::new();
    let mut body: Option<TokenTree> = None;
    let mut is_tuple = false;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                body = Some(tokens[i].clone());
                break;
            }
            TokenTree::Group(g)
                if g.delimiter() == Delimiter::Parenthesis && body.is_none() && kw == "struct" =>
            {
                body = Some(tokens[i].clone());
                is_tuple = true;
                i += 1;
                // where clause may follow the parens; stop at ';'.
                while i < tokens.len() {
                    if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ';') {
                        break;
                    }
                    where_clause.push(tokens[i].clone());
                    i += 1;
                }
                break;
            }
            TokenTree::Punct(p) if p.as_char() == ';' => break,
            t => {
                where_clause.push(t.clone());
                i += 1;
            }
        }
    }
    let where_clause = tokens_text(&where_clause);

    let data = match (&body, kw.as_str()) {
        (None, "struct") => Data::Unit,
        (Some(TokenTree::Group(g)), "struct") if is_tuple => {
            let skips = split_commas(&g.stream().into_iter().collect::<Vec<_>>())
                .into_iter()
                .map(|field| {
                    let mut j = 0;
                    take_attrs(&field, &mut j).skip
                })
                .collect();
            Data::Tuple(skips)
        }
        (Some(TokenTree::Group(g)), "struct") => {
            let fields = split_commas(&g.stream().into_iter().collect::<Vec<_>>())
                .into_iter()
                .map(|field| {
                    let mut j = 0;
                    let info = take_attrs(&field, &mut j);
                    take_vis(&field, &mut j);
                    NamedField {
                        name: expect_ident(&field, &mut j),
                        skip: info.skip,
                        default: info.default,
                    }
                })
                .collect();
            Data::Named(fields)
        }
        (Some(TokenTree::Group(g)), "enum") => {
            let variants = split_commas(&g.stream().into_iter().collect::<Vec<_>>())
                .into_iter()
                .map(|var| {
                    let mut j = 0;
                    take_attrs(&var, &mut j);
                    let vname = expect_ident(&var, &mut j);
                    let kind = match var.get(j) {
                        Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Parenthesis => {
                            let n =
                                split_commas(&vg.stream().into_iter().collect::<Vec<_>>()).len();
                            VariantKind::Tuple(n)
                        }
                        Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Brace => {
                            let names = split_commas(&vg.stream().into_iter().collect::<Vec<_>>())
                                .into_iter()
                                .map(|field| {
                                    let mut k = 0;
                                    let info = take_attrs(&field, &mut k);
                                    take_vis(&field, &mut k);
                                    NamedField {
                                        name: expect_ident(&field, &mut k),
                                        skip: info.skip,
                                        default: info.default,
                                    }
                                })
                                .collect();
                            VariantKind::Named(names)
                        }
                        _ => VariantKind::Unit,
                    };
                    Variant { name: vname, kind }
                })
                .collect();
            Data::Enum(variants)
        }
        _ => panic!("serde_derive shim: unsupported input shape for `{name}`"),
    };

    Input {
        name,
        params,
        where_clause,
        data,
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// Returns `(impl_generics, ty_generics)`; type params get `extra_bound`
/// appended so un-annotated generics like `Doc<'a, M>` still derive.
fn generics_split(params: &[Param], extra_bound: &str) -> (String, String) {
    if params.is_empty() {
        return (String::new(), String::new());
    }
    let impl_g = params
        .iter()
        .map(|p| {
            if p.is_lifetime {
                if p.bounds.is_empty() {
                    p.name.clone()
                } else {
                    format!("{}: {}", p.name, p.bounds)
                }
            } else if p.bounds.is_empty() {
                format!("{}: {extra_bound}", p.name)
            } else {
                format!("{}: {} + {extra_bound}", p.name, p.bounds)
            }
        })
        .collect::<Vec<_>>()
        .join(", ");
    let ty_g = params
        .iter()
        .map(|p| p.name.clone())
        .collect::<Vec<_>>()
        .join(", ");
    (format!("<{impl_g}>"), format!("<{ty_g}>"))
}

fn gen_serialize(inp: &Input) -> String {
    let (impl_g, ty_g) = generics_split(&inp.params, "::serde::Serialize");
    let name = &inp.name;
    let body = match &inp.data {
        Data::Named(fields) => {
            let entries = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "(\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0}))",
                        f.name
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::json::Value::Object(vec![{entries}])")
        }
        Data::Tuple(skips) => {
            let live: Vec<usize> = (0..skips.len()).filter(|&i| !skips[i]).collect();
            match live.as_slice() {
                [] => "::serde::json::Value::Null".to_string(),
                // Newtype: serialize transparently as the inner value.
                [only] => format!("::serde::Serialize::to_value(&self.{only})"),
                many => {
                    let items = many
                        .iter()
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!("::serde::json::Value::Array(vec![{items}])")
                }
            }
        }
        Data::Unit => "::serde::json::Value::Null".to_string(),
        Data::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "Self::{vname} => \
                             ::serde::json::Value::String(\"{vname}\".to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "Self::{vname}(__f0) => ::serde::json::Value::Object(vec![(\
                             \"{vname}\".to_string(), ::serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let pats = (0..*n)
                                .map(|i| format!("__f{i}"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            let items = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "Self::{vname}({pats}) => ::serde::json::Value::Object(vec![(\
                                 \"{vname}\".to_string(), \
                                 ::serde::json::Value::Array(vec![{items}]))]),"
                            )
                        }
                        VariantKind::Named(fields) => {
                            let pats = fields
                                .iter()
                                .map(|f| {
                                    // Skipped fields bind to `_` so the
                                    // pattern stays exhaustive without an
                                    // unused-variable warning.
                                    if f.skip {
                                        format!("{}: _", f.name)
                                    } else {
                                        f.name.clone()
                                    }
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            let entries = fields
                                .iter()
                                .filter(|f| !f.skip)
                                .map(|f| {
                                    format!(
                                        "(\"{0}\".to_string(), \
                                         ::serde::Serialize::to_value({0}))",
                                        f.name
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "Self::{vname} {{ {pats} }} => \
                                 ::serde::json::Value::Object(vec![(\
                                 \"{vname}\".to_string(), \
                                 ::serde::json::Value::Object(vec![{entries}]))]),"
                            )
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_g} ::serde::Serialize for {name}{ty_g} {where_clause} {{\n\
             fn to_value(&self) -> ::serde::json::Value {{ {body} }}\n\
         }}",
        where_clause = inp.where_clause,
    )
}

fn named_fields_ctor(type_name: &str, fields: &[NamedField], source: &str) -> String {
    let inits = fields
        .iter()
        .map(|f| {
            if f.skip {
                format!("{}: ::core::default::Default::default()", f.name)
            } else if f.default {
                format!(
                    "{0}: match {source}.get(\"{0}\") {{\n\
                         Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
                         None => ::core::default::Default::default(),\n\
                     }}",
                    f.name
                )
            } else {
                format!(
                    "{0}: match {source}.get(\"{0}\") {{\n\
                         Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
                         None => return Err(::serde::json::Error::new(\n\
                             \"missing field `{0}` in {type_name}\")),\n\
                     }}",
                    f.name
                )
            }
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!("{{ {inits} }}")
}

fn gen_deserialize(inp: &Input) -> String {
    let (impl_g, ty_g) = generics_split(&inp.params, "::serde::Deserialize");
    let name = &inp.name;
    let body = match &inp.data {
        Data::Named(fields) => {
            let ctor = named_fields_ctor(name, fields, "__v");
            format!(
                "match __v {{\n\
                     ::serde::json::Value::Object(_) => Ok(Self {ctor}),\n\
                     __other => Err(::serde::json::Error::type_mismatch(\"object\", __other)),\n\
                 }}"
            )
        }
        Data::Tuple(skips) => {
            let live: Vec<usize> = (0..skips.len()).filter(|&i| !skips[i]).collect();
            match live.as_slice() {
                [] => {
                    let defaults = skips
                        .iter()
                        .map(|_| "::core::default::Default::default()".to_string())
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!("Ok(Self({defaults}))")
                }
                [only] => {
                    let args = (0..skips.len())
                        .map(|i| {
                            if i == *only {
                                "::serde::Deserialize::from_value(__v)?".to_string()
                            } else {
                                "::core::default::Default::default()".to_string()
                            }
                        })
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!("Ok(Self({args}))")
                }
                many => {
                    let n = many.len();
                    let mut next = 0usize;
                    let args = (0..skips.len())
                        .map(|i| {
                            if skips[i] {
                                "::core::default::Default::default()".to_string()
                            } else {
                                let s =
                                    format!("::serde::Deserialize::from_value(&__items[{next}])?");
                                next += 1;
                                s
                            }
                        })
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!(
                        "match __v {{\n\
                             ::serde::json::Value::Array(__items) if __items.len() == {n} => \
                                 Ok(Self({args})),\n\
                             __other => Err(::serde::json::Error::type_mismatch(\n\
                                 \"array of {n} elements\", __other)),\n\
                         }}"
                    )
                }
            }
        }
        Data::Unit => "Ok(Self)".to_string(),
        Data::Enum(variants) => {
            let unit_arms = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => Ok(Self::{0}),", v.name))
                .collect::<Vec<_>>()
                .join("\n");
            let data_arms = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vname}\" => \
                             Ok(Self::{vname}(::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let args = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            Some(format!(
                                "\"{vname}\" => match __inner {{\n\
                                     ::serde::json::Value::Array(__items) \
                                         if __items.len() == {n} => Ok(Self::{vname}({args})),\n\
                                     __other => Err(::serde::json::Error::type_mismatch(\n\
                                         \"array of {n} elements\", __other)),\n\
                                 }},"
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let ctor = named_fields_ctor(name, fields, "__inner");
                            Some(format!(
                                "\"{vname}\" => match __inner {{\n\
                                     ::serde::json::Value::Object(_) => \
                                         Ok(Self::{vname} {ctor}),\n\
                                     __other => Err(::serde::json::Error::type_mismatch(\n\
                                         \"object\", __other)),\n\
                                 }},"
                            ))
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "match __v {{\n\
                     ::serde::json::Value::String(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => Err(::serde::json::Error::new(format!(\n\
                             \"unknown variant `{{__other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::json::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __inner) = &__entries[0];\n\
                         let _ = __inner;\n\
                         match __tag.as_str() {{\n\
                             {data_arms}\n\
                             __other => Err(::serde::json::Error::new(format!(\n\
                                 \"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }},\n\
                     __other => Err(::serde::json::Error::type_mismatch(\n\
                         \"string or single-key object\", __other)),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_g} ::serde::Deserialize for {name}{ty_g} {where_clause} {{\n\
             fn from_value(__v: &::serde::json::Value) \
                 -> ::core::result::Result<Self, ::serde::json::Error> {{ {body} }}\n\
         }}",
        where_clause = inp.where_clause,
    )
}
