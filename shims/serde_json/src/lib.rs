//! Hermetic stand-in for the `serde_json` crate.
//!
//! Thin text layer over the `serde` shim's [`Value`] tree: serialization
//! renders a value tree to JSON text, deserialization parses text and
//! rebuilds the type from the tree. Covers the API surface this workspace
//! uses: `to_string`, `to_string_pretty`, `from_str`, `from_slice`,
//! `to_value`, [`Value`], and the [`json!`] macro (string-literal keys,
//! expression values).

#![forbid(unsafe_code)]

pub use serde::json::{Error, Value};
use serde::{Deserialize, Serialize};

/// Result alias matching `serde_json`.
pub type Result<T> = std::result::Result<T, Error>;

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes to compact one-line JSON.
///
/// # Errors
/// Never fails in this shim (the signature matches `serde_json`).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().to_json_string())
}

/// Serializes to pretty-printed JSON (two-space indent).
///
/// # Errors
/// Never fails in this shim (the signature matches `serde_json`).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().to_json_string_pretty())
}

/// Deserializes a value from JSON text.
///
/// # Errors
/// [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    T::from_value(&Value::parse(s)?)
}

/// Deserializes a value from JSON bytes (must be UTF-8).
///
/// # Errors
/// [`Error`] on invalid UTF-8, malformed JSON, or a shape mismatch with `T`.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Builds a [`Value`] from JSON-ish syntax.
///
/// Supports the shapes this workspace writes: object literals with
/// string-literal keys and arbitrary expression values, array literals,
/// `null`, and bare expressions (anything `Serialize`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![ $( ($key.to_string(), $crate::to_value(&$val)) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_round_trip() {
        let v: Vec<u32> = from_str("[1,2,3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
    }

    #[test]
    fn json_macro_objects_and_nesting() {
        let inner = json!({"nodes": vec![1u32, 2]});
        let doc = json!({
            "query_type": "AND",
            "budget": 5u32,
            "paths": vec![inner.clone(), inner],
        });
        assert_eq!(doc["query_type"], "AND");
        assert_eq!(doc["budget"], 5u64);
        assert_eq!(doc["paths"].as_array().unwrap().len(), 2);
        assert_eq!(doc["paths"][0]["nodes"][1], 2u64);
    }

    #[test]
    fn from_slice_matches_from_str() {
        let doc: Value = from_slice(br#"{"a": 1.5}"#).unwrap();
        assert_eq!(doc["a"], 1.5);
    }

    #[test]
    fn errors_are_displayable() {
        let err = from_str::<Value>("{oops").unwrap_err();
        assert!(!err.to_string().is_empty());
    }
}
