//! Umbrella crate for the CePS reproduction workspace.
//!
//! This crate exists to host the workspace-level integration tests (`tests/`)
//! and runnable examples (`examples/`). It re-exports the member crates under
//! short names, and [`prelude`] gives examples a one-import surface over the
//! whole pipeline — engine, config, serving layer, graph building and the
//! unified [`CepsError`]:
//!
//! ```
//! use ceps_repro::prelude::*;
//!
//! fn center_piece() -> Result<(), CepsError> {
//!     let mut b = GraphBuilder::new();
//!     for (x, y) in [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)] {
//!         b.add_edge(NodeId(x), NodeId(y), 1.0)?;
//!     }
//!     let engine = CepsEngine::new(b.build()?, CepsConfig::default().budget(2))?;
//!     let service = CepsServiceBuilder::new().cache_bytes(16 << 20).build(engine);
//!     let reply = service.serve(&ServeRequest::new(vec![NodeId(0), NodeId(4)]))?;
//!     assert!(reply.members.iter().any(|m| m.id == NodeId(2)));
//!     Ok(())
//! }
//! center_piece().unwrap();
//! ```
//!
//! The same [`ServeRequest`](prelude::ServeRequest) /
//! [`ServeReply`](prelude::ServeReply) pair also travels the
//! [`ceps_net`] wire boundary verbatim, so in-process and remote callers
//! share one vocabulary.

pub use ceps_baselines;
pub use ceps_core;
pub use ceps_datagen;
pub use ceps_graph;
pub use ceps_net;
pub use ceps_partition;
pub use ceps_rwr;
pub use ceps_viz;

use std::fmt;

/// One error type over every workspace crate, so examples and integration
/// tests can use a single `Result<_, CepsError>` with `?` across layers.
///
/// Each member crate keeps its own typed error (re-exported here as the
/// variant payload); this enum only adds the `From` conversions.
#[derive(Debug)]
#[non_exhaustive]
pub enum CepsError {
    /// Graph substrate errors ([`ceps_graph`]).
    Graph(ceps_graph::GraphError),
    /// RWR solver and cache errors ([`ceps_rwr`]).
    Rwr(ceps_rwr::RwrError),
    /// Partitioner errors ([`ceps_partition`]).
    Partition(ceps_partition::PartitionError),
    /// Pipeline errors ([`ceps_core`]).
    Core(ceps_core::CepsError),
    /// Baseline-method errors ([`ceps_baselines`]).
    Baseline(ceps_baselines::BaselineError),
}

impl fmt::Display for CepsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CepsError::Graph(e) => write!(f, "graph error: {e}"),
            CepsError::Rwr(e) => write!(f, "rwr error: {e}"),
            CepsError::Partition(e) => write!(f, "partition error: {e}"),
            CepsError::Core(e) => write!(f, "ceps error: {e}"),
            CepsError::Baseline(e) => write!(f, "baseline error: {e}"),
        }
    }
}

impl std::error::Error for CepsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CepsError::Graph(e) => Some(e),
            CepsError::Rwr(e) => Some(e),
            CepsError::Partition(e) => Some(e),
            CepsError::Core(e) => Some(e),
            CepsError::Baseline(e) => Some(e),
        }
    }
}

impl From<ceps_graph::GraphError> for CepsError {
    fn from(e: ceps_graph::GraphError) -> Self {
        CepsError::Graph(e)
    }
}

impl From<ceps_rwr::RwrError> for CepsError {
    fn from(e: ceps_rwr::RwrError) -> Self {
        CepsError::Rwr(e)
    }
}

impl From<ceps_partition::PartitionError> for CepsError {
    fn from(e: ceps_partition::PartitionError) -> Self {
        CepsError::Partition(e)
    }
}

impl From<ceps_core::CepsError> for CepsError {
    fn from(e: ceps_core::CepsError) -> Self {
        CepsError::Core(e)
    }
}

impl From<ceps_baselines::BaselineError> for CepsError {
    fn from(e: ceps_baselines::BaselineError) -> Self {
        CepsError::Baseline(e)
    }
}

/// Convenient glob-import surface for examples and tests.
pub mod prelude {
    pub use crate::CepsError;
    pub use ceps_core::{
        CepsConfig, CepsEngine, CepsResult, CepsService, CepsServiceBuilder, FastCeps, QueryType,
        ScoreMethod, ServeOutcome, ServeReply, ServeRequest,
    };
    pub use ceps_datagen::{CoauthorConfig, CoauthorGraph, QueryRepository};
    pub use ceps_graph::{CsrGraph, GraphBuilder, IntoSharedGraph, NodeId};
    pub use ceps_net::{CepsClient, CepsServer, ListenAddr, ServerConfig};
    pub use ceps_rwr::{CacheStats, RwrConfig, RwrEngine, RwrRowCache, ScoreBackend};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unified_error_converts_from_every_layer() {
        use std::error::Error;
        let from_graph: CepsError = ceps_graph::GraphError::EmptyGraph.into();
        let from_rwr: CepsError = ceps_rwr::RwrError::NoQueries.into();
        let from_core: CepsError = ceps_core::CepsError::NoQueries.into();
        for e in [&from_graph, &from_rwr, &from_core] {
            assert!(e.source().is_some());
            assert!(!e.to_string().is_empty());
        }
    }
}
