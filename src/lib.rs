//! Umbrella crate for the CePS reproduction workspace.
//!
//! This crate exists to host the workspace-level integration tests (`tests/`)
//! and runnable examples (`examples/`). It re-exports the member crates under
//! short names so examples read naturally:
//!
//! ```
//! use ceps_repro::prelude::*;
//!
//! let graph = ceps_datagen::CoauthorConfig::tiny().seed(7).generate().into_graph();
//! assert!(graph.node_count() > 0);
//! ```

pub use ceps_baselines;
pub use ceps_core;
pub use ceps_datagen;
pub use ceps_graph;
pub use ceps_partition;
pub use ceps_rwr;
pub use ceps_viz;

/// Convenient glob-import surface for examples and tests.
pub mod prelude {
    pub use ceps_core::{CepsConfig, CepsEngine, CepsResult, QueryType};
    pub use ceps_datagen::{CoauthorConfig, CoauthorGraph, QueryRepository};
    pub use ceps_graph::{CsrGraph, GraphBuilder, NodeId};
    pub use ceps_rwr::{RwrConfig, RwrEngine};
}
