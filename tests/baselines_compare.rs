//! Cross-crate comparison: CePS versus the baseline connectors on the same
//! query sets, measured by the paper's own goodness criterion (Eq. 13).

use ceps_baselines::{ppr::ppr_top_nodes, shortest::shortest_path_subgraph, steiner::steiner_tree};
use ceps_core::{eval, CepsConfig, CepsEngine, QueryType};
use ceps_datagen::{CoauthorConfig, CoauthorGraph, QueryRepository};
use ceps_rwr::RwrConfig;

fn workload() -> (CoauthorGraph, QueryRepository) {
    let data = CoauthorConfig::tiny().seed(33).generate();
    let repo = QueryRepository::from_graph(&data);
    (data, repo)
}

#[test]
fn ceps_captures_at_least_as_much_goodness_as_shortest_paths_at_equal_size() {
    let (data, repo) = workload();
    let mut wins = 0;
    let mut total = 0;
    for seed in 0..10u64 {
        let queries = repo.sample(3, seed);
        let Ok(sp) = shortest_path_subgraph(&data.graph, &queries) else {
            continue;
        };
        // Give CePS the same node budget the shortest-path union used.
        let budget = sp.len().saturating_sub(queries.len()).max(1);
        let cfg = CepsConfig::default()
            .budget(budget)
            .query_type(QueryType::And);
        let res = CepsEngine::new(&data.graph, cfg)
            .unwrap()
            .run(&queries)
            .unwrap();

        let ceps_ratio = eval::node_ratio(&res.combined, &res.subgraph);
        let sp_ratio = eval::node_ratio(&res.combined, &sp);
        total += 1;
        if ceps_ratio + 1e-12 >= sp_ratio {
            wins += 1;
        }
    }
    assert!(total >= 5, "too few connected query draws");
    // CePS optimizes this criterion directly; it must win at least the
    // overwhelming majority (ties count as wins).
    assert!(wins * 10 >= total * 8, "CePS won only {wins}/{total}");
}

#[test]
fn ceps_beats_the_steiner_heuristic_on_goodness_capture() {
    let (data, repo) = workload();
    let mut wins = 0;
    let mut total = 0;
    for seed in 0..10u64 {
        let queries = repo.sample(3, seed);
        let Ok(tree) = steiner_tree(&data.graph, &queries) else {
            continue;
        };
        let budget = tree.subgraph.len().saturating_sub(queries.len()).max(1);
        let cfg = CepsConfig::default()
            .budget(budget)
            .query_type(QueryType::And);
        let res = CepsEngine::new(&data.graph, cfg)
            .unwrap()
            .run(&queries)
            .unwrap();

        let ceps_ratio = eval::node_ratio(&res.combined, &res.subgraph);
        let steiner_ratio = eval::node_ratio(&res.combined, &tree.subgraph);
        total += 1;
        if ceps_ratio + 1e-12 >= steiner_ratio {
            wins += 1;
        }
    }
    assert!(total >= 5);
    assert!(wins * 10 >= total * 8, "CePS won only {wins}/{total}");
}

#[test]
fn ppr_sum_cannot_express_and_semantics() {
    // Footnote 1's point, measured: under summed (PPR/OR-ish) scores the
    // top nodes may be one-sided hubs, while the AND combination demands
    // closeness to every query. We verify the rankings genuinely differ.
    let (data, repo) = workload();
    let queries = repo.sample_across_communities(2, 4);
    let (_, summed) = ppr_top_nodes(&data.graph, &queries, 10, RwrConfig::default()).unwrap();

    let cfg = CepsConfig::default().budget(10).query_type(QueryType::And);
    let res = CepsEngine::new(&data.graph, cfg)
        .unwrap()
        .run(&queries)
        .unwrap();

    let top_by = |scores: &[f64]| {
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
        order
            .into_iter()
            .filter(|i| !queries.iter().any(|q| q.index() == *i))
            .take(5)
            .collect::<Vec<_>>()
    };
    let ppr_top = top_by(&summed);
    let and_top = top_by(&res.combined);
    assert_ne!(
        ppr_top, and_top,
        "sum and AND rankings coincided unexpectedly"
    );
}
