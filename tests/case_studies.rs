//! Integration tests pinning the paper's three case studies (Figs. 1–3)
//! on the synthetic co-authorship graph.

use ceps_baselines::delivered_current::{connection_subgraph, DeliveredCurrentConfig};
use ceps_core::{CepsConfig, CepsEngine, QueryType};
use ceps_datagen::{CoauthorConfig, CoauthorGraph, QueryRepository};
use ceps_graph::NodeId;

fn workload() -> (CoauthorGraph, QueryRepository) {
    let data = CoauthorConfig::tiny().seed(12).generate();
    let repo = QueryRepository::from_graph(&data);
    (data, repo)
}

/// Fig. 2: CePS is insensitive to the order of the query nodes, while the
/// delivered-current baseline is order-sensitive for at least some pairs.
#[test]
fn fig2_ceps_order_invariant_delivered_current_not_always() {
    let (data, repo) = workload();
    let cfg = CepsConfig::default().budget(4).query_type(QueryType::And);
    let engine = CepsEngine::new(&data.graph, cfg).unwrap();

    let mut dc_differs_somewhere = false;
    for seed in 0..30u64 {
        let qs = repo.sample_across_communities(2, seed);
        // CePS: always identical under order swap.
        let f: Vec<NodeId> = engine.run(&qs).unwrap().subgraph.nodes().collect();
        let r: Vec<NodeId> = engine
            .run(&[qs[1], qs[0]])
            .unwrap()
            .subgraph
            .nodes()
            .collect();
        assert_eq!(f, r, "CePS order-sensitive for {qs:?}");

        // Delivered current: record whether any pair flips.
        let dcfg = DeliveredCurrentConfig {
            budget: 4,
            ..Default::default()
        };
        if let (Ok(fwd), Ok(rev)) = (
            connection_subgraph(&data.graph, qs[0], qs[1], &dcfg),
            connection_subgraph(&data.graph, qs[1], qs[0], &dcfg),
        ) {
            let fv: Vec<NodeId> = fwd.subgraph.nodes().collect();
            let rv: Vec<NodeId> = rev.subgraph.nodes().collect();
            if fv != rv {
                dc_differs_somewhere = true;
            }
        }
    }
    assert!(
        dc_differs_somewhere,
        "expected at least one order-sensitive delivered-current pair in 30 draws"
    );
}

/// Fig. 1: with two queries per community, `AND` center-pieces must touch
/// both communities' query groups, while `2_softAND` members only need one.
#[test]
fn fig1_softand_members_need_fewer_communities() {
    let (data, repo) = workload();
    let queries = vec![
        repo.group(0)[0],
        repo.group(0)[1],
        repo.group(1)[0],
        repo.group(1)[1],
    ];

    let run = |qt| {
        let cfg = CepsConfig::default().budget(8).query_type(qt);
        CepsEngine::new(&data.graph, cfg)
            .unwrap()
            .run(&queries)
            .unwrap()
    };
    let and_res = run(QueryType::And);
    let soft_res = run(QueryType::SoftAnd(2));

    // softAND scores dominate AND scores pointwise (k = 2 < 4 = Q).
    for j in 0..data.graph.node_count() {
        assert!(soft_res.combined[j] + 1e-15 >= and_res.combined[j]);
    }
    // And the softAND subgraph captures at least as much raw goodness mass
    // under its own scoring as the AND subgraph does under its.
    assert!(soft_res.subgraph.len() >= 4);
    assert!(and_res.subgraph.len() >= 4);
}

/// Fig. 3: three queries from three communities — every query is served by
/// at least one key path, and the best center-piece is close to all three.
#[test]
fn fig3_center_piece_reaches_all_queries() {
    let (data, repo) = workload();
    let queries = repo.sample_across_communities(3, 1);
    let cfg = CepsConfig::default().budget(12).query_type(QueryType::And);
    let res = CepsEngine::new(&data.graph, cfg)
        .unwrap()
        .run(&queries)
        .unwrap();

    assert!(
        res.subgraph.is_connected(&data.graph),
        "Fig 3 subgraph disconnected"
    );

    // Every query is the source of at least one extracted path (all
    // sources are active for AND queries).
    for i in 0..queries.len() {
        assert!(
            res.paths.iter().any(|p| p.source_index == i),
            "query {i} never served by a path"
        );
    }

    // The best non-query node has a positive individual score from every
    // query (it is genuinely "close to all", not just to one).
    let best = res
        .subgraph
        .nodes()
        .filter(|v| !queries.contains(v))
        .max_by(|a, b| res.combined[a.index()].total_cmp(&res.combined[b.index()]));
    let best = best.expect("budget 12 yields non-query nodes");
    for i in 0..queries.len() {
        assert!(
            res.scores.score(i, best) > 0.0,
            "best center-piece unreachable from query {i}"
        );
    }
}
