//! Failure-injection and degenerate-input tests: the pipeline must behave
//! sensibly (no panics, documented outcomes) on inputs the paper never
//! shows — isolated queries, budgets larger than the graph, trivial
//! graphs, disconnected query sets.

use ceps_core::{CepsConfig, CepsEngine, FastCeps, QueryType};
use ceps_graph::{GraphBuilder, NodeId};

/// Path 0-1-2 plus isolated node 3.
fn path_plus_isolated() -> ceps_graph::CsrGraph {
    let mut b = GraphBuilder::with_nodes(4);
    b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
    b.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
    b.build().unwrap()
}

#[test]
fn isolated_query_node_yields_queries_only_under_and() {
    let g = path_plus_isolated();
    let cfg = CepsConfig::default().budget(3).query_type(QueryType::And);
    let engine = CepsEngine::new(&g, cfg).unwrap();
    // Query 3 is isolated: nothing can be close to BOTH 0 and 3, so the
    // combined scores vanish and extraction stops at the query set.
    let res = engine.run(&[NodeId(0), NodeId(3)]).unwrap();
    assert_eq!(res.subgraph.len(), 2);
    assert!(res.subgraph.contains(NodeId(0)));
    assert!(res.subgraph.contains(NodeId(3)));
    assert!(res.destinations.is_empty());
}

#[test]
fn isolated_query_node_still_grows_under_or() {
    let g = path_plus_isolated();
    let cfg = CepsConfig::default().budget(2).query_type(QueryType::Or);
    let engine = CepsEngine::new(&g, cfg).unwrap();
    // OR semantics: nodes close to query 0 still score; the path grows.
    let res = engine.run(&[NodeId(0), NodeId(3)]).unwrap();
    assert!(
        res.subgraph.len() > 2,
        "OR failed to grow: {:?}",
        res.subgraph
    );
}

#[test]
fn budget_larger_than_graph_takes_everything_reachable() {
    let g = path_plus_isolated();
    let cfg = CepsConfig::default().budget(100).query_type(QueryType::And);
    let engine = CepsEngine::new(&g, cfg).unwrap();
    let res = engine.run(&[NodeId(0), NodeId(2)]).unwrap();
    // All positive-score nodes (the path) get taken; the isolated node
    // cannot score and stays out.
    assert!(res.subgraph.contains(NodeId(1)));
    assert!(!res.subgraph.contains(NodeId(3)));
}

#[test]
fn two_node_graph_works() {
    let mut b = GraphBuilder::new();
    b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
    let g = b.build().unwrap();
    let engine = CepsEngine::new(&g, CepsConfig::default().budget(1)).unwrap();
    let res = engine.run(&[NodeId(0), NodeId(1)]).unwrap();
    assert_eq!(res.subgraph.len(), 2);
    let res = engine.run(&[NodeId(0)]).unwrap();
    assert!(res.subgraph.contains(NodeId(0)));
}

#[test]
fn all_nodes_as_queries_is_a_fixed_point() {
    let g = path_plus_isolated();
    let engine = CepsEngine::new(&g, CepsConfig::default().budget(5)).unwrap();
    let queries: Vec<NodeId> = g.nodes().collect();
    let res = engine.run(&queries).unwrap();
    assert_eq!(res.subgraph.len(), 4);
    assert!(res.destinations.is_empty(), "nothing left to add");
}

#[test]
fn soft_and_k_equal_to_query_count_equals_and() {
    let g = path_plus_isolated();
    let queries = [NodeId(0), NodeId(2)];
    let run = |qt| {
        let cfg = CepsConfig::default().budget(2).query_type(qt);
        CepsEngine::new(&g, cfg).unwrap().run(&queries).unwrap()
    };
    let and = run(QueryType::And);
    let soft = run(QueryType::SoftAnd(2));
    assert_eq!(and.combined, soft.combined);
    let a: Vec<_> = and.subgraph.nodes().collect();
    let s: Vec<_> = soft.subgraph.nodes().collect();
    assert_eq!(a, s);
}

#[test]
fn fast_ceps_with_query_in_tiny_partition_still_answers() {
    // Partition counts close to the node count force tiny partitions.
    let g = path_plus_isolated();
    let cfg = CepsConfig::default().budget(2);
    let fast = FastCeps::new(&g, cfg, 4, 0).unwrap();
    let res = fast.run(&[NodeId(0)]).unwrap();
    assert!(res.subgraph.contains(NodeId(0)));
}

#[test]
fn heavy_multi_edge_weights_do_not_break_normalization() {
    // Extremely skewed weights: one edge a million times heavier.
    let mut b = GraphBuilder::new();
    b.add_edge(NodeId(0), NodeId(1), 1e6).unwrap();
    b.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
    b.add_edge(NodeId(2), NodeId(3), 1e-6).unwrap();
    let g = b.build().unwrap();
    let engine = CepsEngine::new(&g, CepsConfig::default().budget(2)).unwrap();
    let res = engine.run(&[NodeId(0), NodeId(3)]).unwrap();
    for &s in &res.combined {
        assert!(s.is_finite());
        assert!((0.0..=1.0).contains(&s));
    }
    assert!(res.subgraph.is_connected(&g));
}

#[test]
fn star_hub_query_with_penalization() {
    // A pure star: hub 0 with 20 leaves; alpha = 1 penalizes the hub hard
    // but the pipeline must stay well-defined.
    let mut b = GraphBuilder::new();
    for leaf in 1..=20u32 {
        b.add_edge(NodeId(0), NodeId(leaf), 1.0).unwrap();
    }
    let g = b.build().unwrap();
    let cfg = CepsConfig::default().budget(3).alpha(1.0);
    let engine = CepsEngine::new(&g, cfg).unwrap();
    let res = engine.run(&[NodeId(1), NodeId(2)]).unwrap();
    // The hub is the only route between two leaves.
    assert!(res.subgraph.contains(NodeId(0)));
    assert!(res.subgraph.is_connected(&g));
}

#[test]
fn duplicate_and_bad_query_sets_error_cleanly() {
    let g = path_plus_isolated();
    let engine = CepsEngine::new(&g, CepsConfig::default()).unwrap();
    assert!(engine.run(&[]).is_err());
    assert!(engine.run(&[NodeId(1), NodeId(1)]).is_err());
    assert!(engine.run(&[NodeId(42)]).is_err());
    let cfg = CepsConfig::default().query_type(QueryType::SoftAnd(9));
    let engine = CepsEngine::new(&g, cfg).unwrap();
    assert!(engine.run(&[NodeId(0), NodeId(1)]).is_err());
}
