//! Integration tests for the Fast CePS speedup path (Sec. 6 / Fig. 6).

use ceps_core::{eval, CepsConfig, CepsEngine, FastCeps, QueryType};
use ceps_datagen::{CoauthorConfig, CoauthorGraph, QueryRepository};

fn workload() -> (CoauthorGraph, QueryRepository) {
    let data = CoauthorConfig::tiny().seed(20).generate();
    let repo = QueryRepository::from_graph(&data);
    (data, repo)
}

#[test]
fn single_partition_reproduces_the_full_run_exactly() {
    let (data, repo) = workload();
    let cfg = CepsConfig::default().budget(8);
    let queries = repo.sample(2, 0);
    let fast = FastCeps::new(&data.graph, cfg, 1, 0).unwrap();
    let fres = fast.run(&queries).unwrap();
    let full = CepsEngine::new(&data.graph, cfg)
        .unwrap()
        .run(&queries)
        .unwrap();

    let f: Vec<_> = fres.subgraph.nodes().collect();
    let p: Vec<_> = full.subgraph.nodes().collect();
    assert_eq!(f, p);
    assert_eq!(fres.reduced_node_count, data.graph.node_count());
    let rel = eval::rel_ratio(&full.combined, &fres.subgraph, &full.subgraph);
    assert!((rel - 1.0).abs() < 1e-12);
}

#[test]
fn more_partitions_shrink_the_online_graph() {
    let (data, repo) = workload();
    let cfg = CepsConfig::default().budget(8);
    let queries = repo.sample_within_community(2, 1);
    let n = data.graph.node_count();
    let mut counts = Vec::new();
    for p in [1usize, 2, 4, 8] {
        let fast = FastCeps::new(&data.graph, cfg, p, 5).unwrap();
        let res = fast.run(&queries).unwrap();
        counts.push(res.reduced_node_count);
        // Queries always in the output regardless of partitioning.
        for &q in &queries {
            assert!(res.subgraph.contains(q));
        }
    }
    // p = 1 keeps everything; any real partitioning shrinks the online
    // graph. (Counts are not strictly monotone in p — different
    // partitionings cover different node sets — so we assert the coarse
    // shape, not per-step monotonicity.)
    assert_eq!(counts[0], n);
    for (i, &c) in counts.iter().enumerate().skip(1) {
        assert!(c < n, "p index {i}: reduced graph not smaller ({c} of {n})");
    }
    assert!(
        *counts.last().unwrap() <= n / 2,
        "p = 8 should roughly isolate the queries' community: {counts:?}"
    );
}

#[test]
fn rel_ratio_stays_reasonable_for_moderate_partitioning() {
    let (data, repo) = workload();
    let cfg = CepsConfig::default().budget(8).query_type(QueryType::And);
    let full_engine = CepsEngine::new(&data.graph, cfg).unwrap();

    let fast = FastCeps::new(&data.graph, cfg, 4, 3).unwrap();
    let mut ratios = Vec::new();
    for seed in 0..8u64 {
        let queries = repo.sample(2, seed);
        let full = full_engine.run(&queries).unwrap();
        let fres = fast.run(&queries).unwrap();
        ratios.push(eval::rel_ratio(
            &full.combined,
            &fres.subgraph,
            &full.subgraph,
        ));
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    // The paper reports ~0.9 at a useful speedup; on the tiny graph with
    // p = 4 (matching its 4 communities) we demand a sane floor, and the
    // ratio can never meaningfully exceed 1.
    assert!(mean > 0.5, "mean RelRatio {mean} (ratios {ratios:?})");
    for r in &ratios {
        assert!(*r <= 1.0 + 0.05, "RelRatio {r} > 1 beyond tie noise");
    }
}

#[test]
fn partitioning_is_reusable_across_query_sets() {
    let (data, repo) = workload();
    let cfg = CepsConfig::default().budget(6);
    let fast = FastCeps::new(&data.graph, cfg, 4, 9).unwrap();
    // Same FastCeps instance answers many query sets (Step 0 is one-time).
    for seed in 0..5u64 {
        let queries = repo.sample(3, seed);
        let res = fast.run(&queries).unwrap();
        assert!(res.subgraph.len() >= queries.len());
    }
}

#[test]
fn blockwise_rwr_composes_with_the_partitioner() {
    use ceps_graph::{normalize::Normalization, Transition};
    use ceps_partition::{partition_graph, PartitionConfig};
    use ceps_rwr::blockwise::BlockwiseRwr;

    let (data, repo) = workload();
    let t = Transition::new(&data.graph, Normalization::DegreePenalized { alpha: 0.5 });
    let p = partition_graph(
        &data.graph,
        &PartitionConfig {
            seed: 4,
            ..PartitionConfig::with_parts(4)
        },
    )
    .unwrap();

    let bw = BlockwiseRwr::new(&t, p.assignment(), 0.5, data.graph.node_count()).unwrap();
    assert_eq!(bw.block_count(), 4);
    // Blockwise storage beats the monolithic N^2 precompute.
    let n = data.graph.node_count();
    assert!(bw.memory_bytes() < n * n * 8);

    // For a hub query, the blockwise solve captures most of the walk mass
    // (what leaks across the cut is exactly Fast CePS's quality loss).
    let q = repo.sample(1, 0)[0];
    let approx = bw.query(q).unwrap();
    let captured: f64 = approx.iter().sum();
    assert!(
        captured > 0.6,
        "blockwise captured only {captured} of the walk mass"
    );
    // Out-of-block scores are exactly zero.
    let home = p.part_of(q);
    for v in data.graph.nodes() {
        if p.part_of(v) != home {
            assert_eq!(approx[v.index()], 0.0);
        }
    }
}
