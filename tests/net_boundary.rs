//! Service-boundary equivalence: a query answered over the `ceps-wire/v1`
//! protocol must be *byte-identical* to the same query answered by the
//! in-process [`CepsService`] API — same struct, same serialization, same
//! f64 bits — pinned here on the medium datagen preset (the scale the CI
//! experiments run). The Unix-socket path of the same guarantee is
//! exercised by the CI smoke (`ceps serve --listen` + `ceps client`).

use ceps_repro::prelude::*;

/// One engine, two services (reference + served) built identically.
fn build_services() -> (CepsEngine, CepsService, CepsService, Vec<Vec<NodeId>>) {
    let data = CoauthorConfig::medium().seed(42).generate();
    let repo = QueryRepository::from_graph(&data);
    let engine = CepsEngine::new(data.graph, CepsConfig::default().budget(6).threads(2)).unwrap();
    let reference = CepsServiceBuilder::new()
        .cache_bytes(32 << 20)
        .build(engine.clone());
    let served = CepsServiceBuilder::new()
        .cache_bytes(32 << 20)
        .workers(2)
        .build(engine.clone());
    let mut sets: Vec<Vec<NodeId>> = (0u64..4)
        .map(|i| repo.sample(2 + (i as usize % 2), 500 + i))
        .collect();
    // Repeat the first set so the wire path also crosses the row cache's
    // hit path — cached and cold replies must not differ.
    sets.push(sets[0].clone());
    (engine, reference, served, sets)
}

#[test]
fn wire_replies_are_byte_identical_to_in_process_serve() {
    let (_engine, reference, served, sets) = build_services();

    // In-process ground truth, serialized exactly as the wire would.
    let expected: Vec<(ServeReply, String)> = sets
        .iter()
        .map(|queries| {
            let reply = reference
                .serve(&ServeRequest::new(queries.clone()))
                .unwrap();
            let json = serde_json::to_string(&reply).unwrap();
            (reply, json)
        })
        .collect();

    let (mut transport, connector) = ceps_repro::ceps_net::in_proc();
    let server = CepsServer::new(served, ServerConfig::default());
    std::thread::scope(|s| {
        let server = &server;
        s.spawn(move || server.serve(&mut transport).unwrap());

        let mut client = CepsClient::from_conn(Box::new(connector.connect().unwrap()));
        for (queries, (reply, json)) in sets.iter().zip(&expected) {
            let wire = client.request(&ServeRequest::new(queries.clone())).unwrap();
            // Struct equality covers exact f64 score bits and ordering…
            assert_eq!(&wire, reply, "wire reply diverged for {queries:?}");
            // …and the serialized frames are byte-identical too.
            assert_eq!(&serde_json::to_string(&wire).unwrap(), json);
        }

        // The shared-vocabulary claim, end to end: subteam membership and
        // scores agree with a direct engine run.
        let direct = reference.run(&sets[0]).unwrap();
        let wire = client.request(&ServeRequest::new(sets[0].clone())).unwrap();
        assert_eq!(wire.members.len(), direct.subgraph.len());
        for m in &wire.members {
            assert!(direct.subgraph.contains(m.id));
            assert_eq!(m.score, direct.combined[m.id.index()], "score bits differ");
        }

        client.shutdown().unwrap();
    });
}

#[test]
fn wire_autok_matches_in_process_inference() {
    let (engine, _reference, served, sets) = build_services();
    let queries = sets[0].clone();
    let expected = ceps_repro::ceps_core::infer_soft_and_k(&engine, &queries).unwrap();

    let (mut transport, connector) = ceps_repro::ceps_net::in_proc();
    let server = CepsServer::new(served, ServerConfig::default());
    std::thread::scope(|s| {
        let server = &server;
        s.spawn(move || server.serve(&mut transport).unwrap());
        let mut client = CepsClient::from_conn(Box::new(connector.connect().unwrap()));
        let wire = client.autok(queries).unwrap();
        assert_eq!(wire.k, expected.k);
        assert_eq!(wire.mean_ranks, expected.mean_ranks, "rank bits differ");
        client.shutdown().unwrap();
    });
}
