//! Observability guarantees: the `ceps-obs` recorder must be a pure
//! observer. With it installed the pipeline's numeric output has to be
//! bitwise-identical to the uninstrumented run, the snapshot must contain
//! the documented stage spans and counters, and the exported JSON must
//! parse under the `ceps-obs/v1` schema.

use ceps_core::{CepsConfig, CepsEngine, CepsResult, QueryType};
use ceps_datagen::{CoauthorConfig, CoauthorGraph, QueryRepository};
use ceps_graph::NodeId;
use std::sync::{Mutex, OnceLock};

/// Serializes tests in this binary: the recorder is process-global.
fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn workload() -> (CoauthorGraph, QueryRepository) {
    let data = CoauthorConfig::tiny().seed(21).generate();
    let repo = QueryRepository::from_graph(&data);
    (data, repo)
}

fn run_pipeline(data: &CoauthorGraph, queries: &[NodeId]) -> CepsResult {
    let cfg = CepsConfig::default()
        .budget(8)
        .query_type(QueryType::SoftAnd(2))
        .alpha(0.5);
    CepsEngine::new(&data.graph, cfg)
        .unwrap()
        .run(queries)
        .unwrap()
}

fn assert_bitwise_equal(a: &CepsResult, b: &CepsResult) {
    // Float vectors compared exactly: instrumentation must not perturb a
    // single bit of the math.
    assert_eq!(a.scores, b.scores, "per-query score matrix differs");
    assert_eq!(a.combined, b.combined, "combined scores differ");
    assert_eq!(a.k, b.k);
    assert_eq!(
        a.subgraph.nodes().collect::<Vec<_>>(),
        b.subgraph.nodes().collect::<Vec<_>>()
    );
    assert_eq!(a.destinations, b.destinations);
    assert_eq!(a.paths.len(), b.paths.len());
    for (pa, pb) in a.paths.iter().zip(&b.paths) {
        assert_eq!(pa.source_index, pb.source_index);
        assert_eq!(pa.nodes, pb.nodes);
    }
}

#[test]
fn recorder_is_bitwise_transparent() {
    let _guard = obs_lock();
    let (data, repo) = workload();
    for seed in 0..5u64 {
        let queries = repo.sample(3, seed);

        ceps_obs::uninstall_recorder();
        let plain = run_pipeline(&data, &queries);

        ceps_obs::install_recorder();
        ceps_obs::reset();
        let observed = run_pipeline(&data, &queries);
        ceps_obs::uninstall_recorder();

        assert_bitwise_equal(&plain, &observed);
    }
}

#[test]
fn snapshot_contains_stage_spans_and_pipeline_counters() {
    let _guard = obs_lock();
    let (data, repo) = workload();
    let queries = repo.sample(3, 7);

    ceps_obs::install_recorder();
    ceps_obs::reset();
    let _ = run_pipeline(&data, &queries);
    let snap = ceps_obs::snapshot();
    ceps_obs::uninstall_recorder();

    for path in ["stage.individual_scores", "stage.combine", "stage.extract"] {
        let stat = snap
            .span(path)
            .unwrap_or_else(|| panic!("span {path:?} missing from snapshot"));
        assert_eq!(stat.count, 1, "{path} should run once per query");
        assert!(stat.total_ms() >= 0.0);
        assert!(stat.self_ms() <= stat.total_ms() + 1e-9);
    }
    // RWR spans nest under the scores stage.
    assert!(
        snap.spans.iter().any(|s| s.path.contains("rwr.solve")),
        "no rwr solve span recorded"
    );
    assert!(snap.counter("rwr.solves").unwrap_or(0) >= 1);
    assert!(snap.counter("rwr.columns").unwrap_or(0) >= queries.len() as u64);
    assert!(snap.counter("extract.paths").unwrap_or(0) >= 1);
    assert!(snap.counter("extract.dp_calls").unwrap_or(0) >= 1);
}

#[test]
fn exported_json_parses_under_the_v1_schema() {
    let _guard = obs_lock();
    let (data, repo) = workload();
    let queries = repo.sample(2, 3);

    ceps_obs::install_recorder();
    ceps_obs::reset();
    let _ = run_pipeline(&data, &queries);
    let snap = ceps_obs::snapshot();
    ceps_obs::uninstall_recorder();

    let meta = ceps_obs::RunMeta::collect("tiny", "test");
    let text = snap.to_json(&meta);
    let doc: serde_json::Value = serde_json::from_str(&text).expect("snapshot JSON must parse");

    assert_eq!(doc["schema"], "ceps-obs/v1");
    assert_eq!(doc["meta"]["preset"], "tiny");
    assert_eq!(doc["meta"]["label"], "test");
    assert!(doc["meta"]["timestamp"].as_str().unwrap().ends_with('Z'));
    let spans = doc["spans"].as_array().expect("spans is an array");
    assert!(!spans.is_empty());
    for span in spans {
        assert!(span["path"].as_str().is_some());
        assert!(span["count"].as_u64().unwrap() >= 1);
        assert!(span["total_ms"].as_f64().unwrap() >= 0.0);
    }
    assert!(doc["counters"]["rwr.solves"].as_u64().unwrap() >= 1);
    let hists = doc["histograms"]
        .as_array()
        .expect("histograms is an array");
    assert!(
        hists.iter().any(|h| h["name"] == "rwr.iterations"),
        "rwr.iterations histogram missing"
    );
}

#[test]
fn disabled_recorder_produces_an_empty_snapshot() {
    let _guard = obs_lock();
    let (data, repo) = workload();
    ceps_obs::install_recorder();
    ceps_obs::reset();
    ceps_obs::uninstall_recorder();
    let _ = run_pipeline(&data, &repo.sample(2, 1));
    let snap = ceps_obs::snapshot();
    assert!(snap.spans.is_empty(), "disabled recorder must not record");
    assert!(snap.counters.is_empty());
    assert!(snap.histograms.is_empty());
}
