//! End-to-end pipeline invariants on generated co-authorship graphs.

use ceps_core::{CepsConfig, CepsEngine, QueryType};
use ceps_datagen::{CoauthorConfig, QueryRepository};
use ceps_graph::algo::largest_component;

fn workload() -> (ceps_datagen::CoauthorGraph, QueryRepository) {
    let data = CoauthorConfig::tiny().seed(77).generate();
    let repo = QueryRepository::from_graph(&data);
    (data, repo)
}

#[test]
fn queries_always_in_output_for_every_query_type() {
    let (data, repo) = workload();
    for (qt, q) in [
        (QueryType::And, 3),
        (QueryType::Or, 3),
        (QueryType::SoftAnd(2), 3),
        (QueryType::And, 1),
        (QueryType::Or, 5),
    ] {
        let queries = repo.sample(q, 9);
        let cfg = CepsConfig::default().budget(8).query_type(qt);
        let engine = CepsEngine::new(&data.graph, cfg).unwrap();
        let res = engine.run(&queries).unwrap();
        for &query in &queries {
            assert!(res.subgraph.contains(query), "{qt:?} dropped query {query}");
        }
    }
}

#[test]
fn budget_bounds_hold_with_path_overshoot_slack() {
    let (data, repo) = workload();
    for budget in [1usize, 5, 10, 25] {
        let queries = repo.sample(3, 1);
        let cfg = CepsConfig::default()
            .budget(budget)
            .query_type(QueryType::And);
        let engine = CepsEngine::new(&data.graph, cfg).unwrap();
        let res = engine.run(&queries).unwrap();
        let non_query = res.subgraph.len() - queries.len();
        let len = cfg.effective_path_len(res.k);
        assert!(
            non_query <= budget.saturating_sub(1) + res.k * len,
            "budget {budget}: {non_query} non-query nodes (len {len}, k {})",
            res.k
        );
    }
}

#[test]
fn and_query_on_giant_component_is_connected() {
    let (data, repo) = workload();
    let giant = largest_component(&data.graph);
    // Hubs are in the giant component by construction of the repository.
    let queries = repo.sample(2, 3);
    assert!(queries.iter().all(|q| giant.contains(q)));
    let cfg = CepsConfig::default().budget(10).query_type(QueryType::And);
    let res = CepsEngine::new(&data.graph, cfg)
        .unwrap()
        .run(&queries)
        .unwrap();
    assert!(
        res.subgraph.is_connected(&data.graph),
        "AND subgraph disconnected: {:?}",
        res.subgraph
    );
}

#[test]
fn combined_scores_respect_query_type_ordering() {
    let (data, repo) = workload();
    let queries = repo.sample(4, 5);
    let mk = |qt| {
        let cfg = CepsConfig::default().budget(5).query_type(qt);
        CepsEngine::new(&data.graph, cfg)
            .unwrap()
            .run(&queries)
            .unwrap()
            .combined
    };
    let or = mk(QueryType::Or);
    let s2 = mk(QueryType::SoftAnd(2));
    let s3 = mk(QueryType::SoftAnd(3));
    let and = mk(QueryType::And);
    for j in 0..data.graph.node_count() {
        assert!(or[j] + 1e-12 >= s2[j]);
        assert!(s2[j] + 1e-12 >= s3[j]);
        assert!(s3[j] + 1e-12 >= and[j]);
    }
}

#[test]
fn results_are_deterministic() {
    let (data, repo) = workload();
    let queries = repo.sample(3, 8);
    let cfg = CepsConfig::default().budget(10);
    let a = CepsEngine::new(&data.graph, cfg)
        .unwrap()
        .run(&queries)
        .unwrap();
    let b = CepsEngine::new(&data.graph, cfg)
        .unwrap()
        .run(&queries)
        .unwrap();
    let an: Vec<_> = a.subgraph.nodes().collect();
    let bn: Vec<_> = b.subgraph.nodes().collect();
    assert_eq!(an, bn);
    assert_eq!(a.combined, b.combined);
    assert_eq!(a.destinations, b.destinations);
}

#[test]
fn query_order_does_not_change_the_subgraph() {
    let (data, repo) = workload();
    let mut queries = repo.sample(3, 2);
    let cfg = CepsConfig::default().budget(10);
    let engine = CepsEngine::new(&data.graph, cfg).unwrap();
    let a: Vec<_> = engine.run(&queries).unwrap().subgraph.nodes().collect();
    queries.reverse();
    let b: Vec<_> = engine.run(&queries).unwrap().subgraph.nodes().collect();
    assert_eq!(a, b);
}

#[test]
fn destination_trace_is_ranked_by_combined_score() {
    let (data, repo) = workload();
    let queries = repo.sample(2, 6);
    let cfg = CepsConfig::default().budget(12);
    let res = CepsEngine::new(&data.graph, cfg)
        .unwrap()
        .run(&queries)
        .unwrap();
    // Each chosen destination has combined score >= every later one
    // (the argmax of Eq. 11 over a shrinking candidate set).
    for w in res.destinations.windows(2) {
        assert!(
            res.combined[w[0].index()] >= res.combined[w[1].index()] - 1e-15,
            "destination order violated"
        );
    }
}

#[test]
fn push_scoring_approximates_the_iterative_pipeline() {
    let (data, repo) = workload();
    let queries = repo.sample(3, 3);
    let iterative = CepsEngine::new(&data.graph, CepsConfig::default().budget(8))
        .unwrap()
        .run(&queries)
        .unwrap();
    // A tight push threshold reproduces the iterative combined scores to
    // within the residual bound. (Exact subgraph equality is not asserted:
    // forward push legitimately perturbs exact score ties, and its work
    // grows like ~1/epsilon, so the threshold stays moderate.)
    let pushed = CepsEngine::new(
        &data.graph,
        CepsConfig::default().budget(8).push_scores(1e-9),
    )
    .unwrap()
    .run(&queries)
    .unwrap();
    for j in 0..data.graph.node_count() {
        let d = (iterative.combined[j] - pushed.combined[j]).abs();
        assert!(d < 1e-6, "node {j}: combined differs by {d}");
    }
    for &q in &queries {
        assert!(pushed.subgraph.contains(q));
    }
    // A loose threshold still upholds the pipeline contract.
    let loose = CepsEngine::new(
        &data.graph,
        CepsConfig::default().budget(8).push_scores(1e-3),
    )
    .unwrap()
    .run(&queries)
    .unwrap();
    for &q in &queries {
        assert!(loose.subgraph.contains(q));
    }
}

#[test]
fn order_statistic_variant_runs_and_differs_from_meeting_probability() {
    let (data, repo) = workload();
    let queries = repo.sample(3, 6);
    let meeting = CepsEngine::new(&data.graph, CepsConfig::default().budget(6))
        .unwrap()
        .run(&queries)
        .unwrap();
    let orderstat = CepsEngine::new(
        &data.graph,
        CepsConfig::default().budget(6).order_statistic(),
    )
    .unwrap()
    .run(&queries)
    .unwrap();
    // Variant 2's AND is min(r(i,j)) — a different scale than the product,
    // and pointwise >= it (min of probabilities beats their product).
    for j in 0..data.graph.node_count() {
        assert!(orderstat.combined[j] + 1e-15 >= meeting.combined[j]);
    }
    for &q in &queries {
        assert!(orderstat.subgraph.contains(q));
    }
}

#[test]
fn manifold_variant_gives_symmetric_scores() {
    // Appendix Variant 1: r(i, j) = r(j, i) under the symmetric operator.
    let (data, _) = workload();
    let engine = CepsEngine::new(&data.graph, CepsConfig::default().budget(4).manifold()).unwrap();
    let a = ceps_graph::NodeId(0);
    let b = ceps_graph::NodeId(7);
    let m = engine.individual_scores(&[a, b]).unwrap();
    assert!((m.score(0, b) - m.score(1, a)).abs() < 1e-9);
}

#[test]
fn extracted_goodness_grows_with_budget() {
    let (data, repo) = workload();
    let queries = repo.sample(3, 4);
    let mut last = 0.0;
    for budget in [2usize, 6, 12, 24] {
        let cfg = CepsConfig::default().budget(budget);
        let res = CepsEngine::new(&data.graph, cfg)
            .unwrap()
            .run(&queries)
            .unwrap();
        let g = res.extracted_goodness();
        assert!(
            g + 1e-15 >= last,
            "budget {budget}: goodness fell {last} -> {g}"
        );
        last = g;
    }
}
