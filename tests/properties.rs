//! Cross-crate property tests: pipeline invariants over randomized
//! generator configurations and query draws.

use ceps_core::{CepsConfig, CepsEngine, QueryType};
use ceps_datagen::{CoauthorConfig, QueryRepository};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = CoauthorConfig> {
    (2usize..=4, 10usize..=30, 30usize..=90, 0u64..1000).prop_map(
        |(communities, authors, papers, seed)| CoauthorConfig {
            communities,
            authors_per_community: authors,
            papers_per_community: papers,
            seed,
            ..CoauthorConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the generator produces, the pipeline upholds its contract:
    /// queries present, subgraph within bounds, scores within [0, 1].
    #[test]
    fn pipeline_contract_holds_on_random_workloads(
        cfg in arb_config(),
        q in 1usize..=4,
        budget in 1usize..=15,
        qseed in 0u64..100,
        qt_pick in 0usize..3,
    ) {
        let data = cfg.generate();
        let repo = QueryRepository::from_graph(&data);
        prop_assume!(repo.all().len() >= q);
        let queries = repo.sample(q, qseed);

        let qt = match qt_pick {
            0 => QueryType::And,
            1 => QueryType::Or,
            _ => QueryType::SoftAnd(((qseed as usize) % q) + 1),
        };
        let ceps_cfg = CepsConfig::default().budget(budget).query_type(qt);
        let engine = CepsEngine::new(&data.graph, ceps_cfg).unwrap();
        let res = engine.run(&queries).unwrap();

        for &query in &queries {
            prop_assert!(res.subgraph.contains(query));
        }
        for &s in &res.combined {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&s), "combined score {s}");
        }
        let len = ceps_cfg.effective_path_len(res.k);
        let non_query = res.subgraph.len() - queries.len();
        prop_assert!(non_query <= budget.saturating_sub(1) + res.k * len);

        // Every key path runs from its source to its destination and is
        // fully contained in the subgraph.
        for p in &res.paths {
            prop_assert_eq!(p.nodes.first(), Some(&queries[p.source_index]));
            prop_assert_eq!(p.nodes.last(), Some(&p.dest));
            for v in &p.nodes {
                prop_assert!(res.subgraph.contains(*v));
            }
            // Downhill: individual scores strictly ordered along the path
            // under the (score, id) total order.
            for w in p.nodes.windows(2) {
                let a = res.scores.score(p.source_index, w[0]);
                let b = res.scores.score(p.source_index, w[1]);
                prop_assert!(
                    a > b || (a == b && w[0].0 > w[1].0),
                    "path not downhill: {a} -> {b}"
                );
            }
        }
    }

    /// NRatio is within [0, 1] and non-decreasing in budget for any
    /// workload (more budget can only capture more goodness mass).
    #[test]
    fn nratio_monotone_in_budget(cfg in arb_config(), qseed in 0u64..50) {
        let data = cfg.generate();
        let repo = QueryRepository::from_graph(&data);
        prop_assume!(repo.all().len() >= 2);
        let queries = repo.sample(2, qseed);
        let mut last = 0.0;
        for budget in [2usize, 6, 14] {
            let ceps_cfg = CepsConfig::default().budget(budget);
            let res = CepsEngine::new(&data.graph, ceps_cfg).unwrap().run(&queries).unwrap();
            let ratio = ceps_core::eval::node_ratio(&res.combined, &res.subgraph);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&ratio));
            prop_assert!(ratio + 1e-9 >= last, "NRatio fell {last} -> {ratio}");
            last = ratio;
        }
    }
}
