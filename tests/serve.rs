//! Serving-layer integration tests: the row cache must be *bitwise
//! transparent* — a [`CepsService`] answers every query with exactly the
//! scores a cold engine would produce, whatever mix of hits, misses,
//! evictions and concurrent workers produced them.

use ceps_repro::prelude::*;
use proptest::prelude::*;

fn workload(seed: u64) -> (CsrGraph, QueryRepository) {
    let data = CoauthorConfig::tiny().seed(seed).generate();
    let repo = QueryRepository::from_graph(&data);
    (data.graph, repo)
}

fn engine(graph: &CsrGraph) -> CepsEngine {
    let cfg = CepsConfig::default().budget(6).threads(1);
    CepsEngine::new(graph, cfg).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: cached scores are bitwise-equal to a cold `solve_block`
    /// over the same query set, across arbitrary overlapping batches.
    #[test]
    fn cached_scores_bitwise_equal_cold_blocks(
        seed in 0u64..200,
        batches in proptest::collection::vec((1usize..=4, 0u64..1000), 1..6),
    ) {
        let (graph, repo) = workload(seed);
        let e = engine(&graph);
        let service = CepsServiceBuilder::new().cache_bytes(32 << 20).build(e.clone());
        for (q, qseed) in batches {
            prop_assume!(repo.all().len() >= q);
            let queries = repo.sample(q, qseed);
            // Cold reference: one batched block solve, no cache involved.
            let cold = e.individual_scores(&queries).unwrap();
            let cached = service.individual_scores(&queries).unwrap();
            // ScoreMatrix equality is bitwise on the f64 payload.
            prop_assert_eq!(cold, cached);
        }
    }

    /// Property: a pathologically small byte budget (constant eviction
    /// thrash) never changes results, only the hit rate.
    #[test]
    fn eviction_thrash_is_correctness_neutral(
        seed in 0u64..200,
        rounds in 2usize..6,
        budget_rows in 1usize..3,
    ) {
        let (graph, repo) = workload(seed);
        let e = engine(&graph);
        // Budget of one or two rows in a single shard: almost every insert
        // evicts something.
        let row_bytes = graph.node_count() * std::mem::size_of::<f64>() + 64;
        let service = CepsServiceBuilder::new()
            .cache_bytes(budget_rows * row_bytes)
            .shards(1)
            .build(e.clone());
        for r in 0..rounds as u64 {
            let queries = repo.sample(3.min(repo.all().len()), seed ^ (r << 16));
            let cold = e.individual_scores(&queries).unwrap();
            let cached = service.individual_scores(&queries).unwrap();
            prop_assert_eq!(cold, cached);
        }
        let stats = service.cache_stats().unwrap();
        prop_assert!(
            stats.evictions > 0 || stats.insertions <= budget_rows as u64,
            "budget was supposed to thrash: {stats:?}"
        );
    }
}

/// Concurrent workers hammering one shared cache agree with the serial,
/// uncached engine — the smoke test ISSUE asks to run under `cargo test -q`.
#[test]
fn concurrent_serving_matches_serial_engine() {
    let (graph, repo) = workload(7);
    let e = engine(&graph);
    let service = CepsServiceBuilder::new()
        .cache_bytes(4 << 20)
        .shards(4)
        .build(e.clone());

    let stream: Vec<Vec<NodeId>> = (0..24)
        .map(|i| repo.sample(1 + (i as usize % 3), 1000 + i))
        .collect();
    let outcome = service.serve_stream(&stream, 4).unwrap();
    assert_eq!(outcome.completed, stream.len());
    assert!(
        outcome.hit_rate().expect("cache enabled and exercised") > 0.0,
        "hub-drawn stream must repeat rows"
    );

    for queries in &stream {
        assert_eq!(
            service.run(queries).unwrap().scores,
            e.run(queries).unwrap().scores
        );
    }
}

/// The facade end-to-end: build, serve and inspect through the prelude
/// only, with `?` over the unified error.
#[test]
fn prelude_covers_the_serving_workflow() -> Result<(), CepsError> {
    let mut b = GraphBuilder::new();
    for (x, y) in [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)] {
        b.add_edge(NodeId(x), NodeId(y), 1.0)?;
    }
    let engine = CepsEngine::new(b.build()?, CepsConfig::default().budget(2))?;
    assert!(matches!(
        engine.config().score_method,
        ScoreMethod::Iterative
    ));
    let service = CepsServiceBuilder::new().cache_bytes(1 << 20).build(engine);
    let result = service.run(&[NodeId(0), NodeId(4)])?;
    assert!(result.subgraph.contains(NodeId(2)));
    let stats: CacheStats = service.cache_stats().expect("cache enabled");
    assert_eq!(stats.insertions, 2);
    Ok(())
}
