//! Live-telemetry integration: the Prometheus exposition must round-trip
//! through a parser (typed families, escaped labels, cumulative buckets,
//! monotone counters), every JSONL metrics/trace line must parse as
//! standalone JSON carrying its schema version, traced serving must emit
//! one line per sampled request with stage times that account for the
//! measured latency, and the exporter's final `.prom` file must match the
//! final registry snapshot.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use ceps_core::telemetry::{trace_json, RequestTrace, SampleKind};
use ceps_core::{CepsConfig, CepsEngine, CepsServiceBuilder, RequestTracer, StageTimes};
use ceps_datagen::{CoauthorConfig, CoauthorGraph, QueryRepository};
use ceps_graph::NodeId;
use ceps_obs::{HistogramStat, MetricsSnapshot, SpanStat, WindowedMetrics};
use proptest::prelude::*;

/// Serializes tests touching the process-global recorder.
fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn workload() -> (CoauthorGraph, QueryRepository) {
    let data = CoauthorConfig::tiny().seed(33).generate();
    let repo = QueryRepository::from_graph(&data);
    (data, repo)
}

fn tmp_dir(label: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ceps_telemetry_{label}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

// ---------------------------------------------------------------------------
// A minimal Prometheus text-exposition parser, used to round-trip the
// exporter's output instead of matching substrings.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct PromSample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
    /// OpenMetrics exemplar suffix, if the bucket carried one:
    /// `(trace_id, observed_value)`.
    exemplar: Option<(String, f64)>,
}

/// Parses `# TYPE` headers and samples (including OpenMetrics exemplar
/// suffixes on bucket lines); panics on any malformed line.
fn parse_prom(text: &str) -> (HashMap<String, String>, Vec<PromSample>) {
    let mut types = HashMap::new();
    let mut samples = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().expect("TYPE line has a name").to_string();
            let kind = it.next().expect("TYPE line has a kind").to_string();
            assert!(it.next().is_none(), "junk after TYPE: {line:?}");
            types.insert(name, kind);
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment: {line:?}");
        // `..._bucket{le="8"} 3 # {trace_id="00ab..."} 5.2` — split the
        // exemplar suffix off before parsing the sample proper.
        let (line, exemplar) = match line.split_once(" # ") {
            None => (line, None),
            Some((sample, ex)) => {
                let (labels, value) = ex.rsplit_once(' ').expect("exemplar has a value");
                let body = labels
                    .strip_prefix('{')
                    .and_then(|l| l.strip_suffix('}'))
                    .expect("exemplar labels are braced");
                let labels = parse_labels(body);
                let trace_id = labels
                    .iter()
                    .find(|(k, _)| k == "trace_id")
                    .map(|(_, v)| v.clone())
                    .expect("exemplar carries a trace_id label");
                let value: f64 = value.parse().expect("exemplar value parses");
                (sample, Some((trace_id, value)))
            }
        };
        let (head, value) = line.rsplit_once(' ').expect("sample has a value");
        let value: f64 = value.parse().unwrap_or_else(|_| {
            assert_eq!(value, "+Inf", "unparsable sample value {value:?}");
            f64::INFINITY
        });
        let (name, labels) = match head.split_once('{') {
            None => (head.to_string(), Vec::new()),
            Some((name, rest)) => {
                let body = rest.strip_suffix('}').expect("labels close with }");
                (name.to_string(), parse_labels(body))
            }
        };
        if exemplar.is_some() {
            assert!(
                name.ends_with("_bucket"),
                "exemplars only belong on bucket lines: {name}"
            );
        }
        samples.push(PromSample {
            name,
            labels,
            value,
            exemplar,
        });
    }
    (types, samples)
}

/// Parses `k="v",k="v"` with `\\`, `\"` and `\n` escapes in values.
fn parse_labels(body: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut chars = body.chars().peekable();
    while chars.peek().is_some() {
        let key: String = chars.by_ref().take_while(|&c| c != '=').collect();
        assert_eq!(chars.next(), Some('"'), "label value must be quoted");
        let mut value = String::new();
        loop {
            match chars.next().expect("unterminated label value") {
                '\\' => match chars.next().expect("dangling escape") {
                    'n' => value.push('\n'),
                    c => value.push(c),
                },
                '"' => break,
                c => value.push(c),
            }
        }
        if chars.peek() == Some(&',') {
            chars.next();
        }
        out.push((key, value));
    }
    out
}

fn sample_value(samples: &[PromSample], name: &str) -> Option<f64> {
    samples.iter().find(|s| s.name == name).map(|s| s.value)
}

// ---------------------------------------------------------------------------
// Prometheus round-trip.
// ---------------------------------------------------------------------------

#[test]
fn prometheus_exposition_round_trips_with_types_buckets_and_monotone_counters() {
    let _guard = obs_lock();
    ceps_obs::install_recorder();
    ceps_obs::reset();

    ceps_obs::counter("serve.requests", 3);
    for v in [0.5, 1.5, 2.5, 40.0] {
        ceps_obs::record("serve.latency_ms", v);
    }
    // A span whose path needs every escape class in its label.
    let (_, _) = ceps_obs::timed("weird \"path\"\\with\nnewline", || 1 + 1);
    let snap1 = ceps_obs::snapshot();
    let text1 = ceps_obs::to_prometheus(&snap1);

    let (types, samples) = parse_prom(&text1);
    // Every sample family is declared: strip the well-known suffixes to
    // recover the family name.
    for s in &samples {
        let family = s
            .name
            .strip_suffix("_bucket")
            .or_else(|| s.name.strip_suffix("_sum"))
            .or_else(|| s.name.strip_suffix("_count"))
            .filter(|f| types.contains_key(*f))
            .unwrap_or(&s.name);
        assert!(
            types.contains_key(family),
            "sample {} has no # TYPE header",
            s.name
        );
        assert!(s.name.starts_with("ceps_"), "unprefixed name {}", s.name);
    }

    assert_eq!(sample_value(&samples, "ceps_serve_requests"), Some(3.0));
    assert_eq!(types["ceps_serve_requests"], "counter");
    assert_eq!(types["ceps_serve_latency_ms"], "histogram");

    // Buckets are cumulative in `le`, ending at +Inf == _count.
    let buckets: Vec<&PromSample> = samples
        .iter()
        .filter(|s| s.name == "ceps_serve_latency_ms_bucket")
        .collect();
    assert!(buckets.len() >= 2, "histogram exposes buckets");
    let mut last_le = f64::NEG_INFINITY;
    let mut last_count = 0.0;
    for b in &buckets {
        let le: f64 = match b.labels.iter().find(|(k, _)| k == "le") {
            Some((_, v)) if v == "+Inf" => f64::INFINITY,
            Some((_, v)) => v.parse().unwrap(),
            None => panic!("bucket without le label"),
        };
        assert!(le > last_le, "le values must ascend");
        assert!(b.value >= last_count, "bucket counts must be cumulative");
        last_le = le;
        last_count = b.value;
    }
    assert!(last_le.is_infinite(), "bucket list must end at +Inf");
    assert_eq!(
        last_count,
        sample_value(&samples, "ceps_serve_latency_ms_count").unwrap(),
        "+Inf bucket must equal _count"
    );
    assert!(
        (sample_value(&samples, "ceps_serve_latency_ms_sum").unwrap() - 44.5).abs() < 1e-9,
        "_sum must match recorded values"
    );

    // The hostile span path survives label escaping intact.
    let span = samples
        .iter()
        .find(|s| s.name == "ceps_span_calls")
        .expect("span sample present");
    assert_eq!(
        span.labels.iter().find(|(k, _)| k == "path").unwrap().1,
        "weird \"path\"\\with\nnewline"
    );

    // Monotonicity: more traffic can only grow counter samples.
    ceps_obs::counter("serve.requests", 2);
    ceps_obs::record("serve.latency_ms", 1.0);
    let text2 = ceps_obs::to_prometheus(&ceps_obs::snapshot());
    let (_, samples2) = parse_prom(&text2);
    for s in &samples {
        if types.get(s.name.as_str()).map(String::as_str) == Some("counter")
            || s.name.ends_with("_count")
        {
            let after = sample_value(&samples2, &s.name)
                .unwrap_or_else(|| panic!("{} vanished from the exposition", s.name));
            assert!(after >= s.value, "{} went backwards", s.name);
        }
    }

    ceps_obs::uninstall_recorder();
}

// ---------------------------------------------------------------------------
// JSONL schema properties.
// ---------------------------------------------------------------------------

/// Hostile strings exercised through label/error escaping.
const NASTY: [&str; 6] = [
    "plain",
    "with \"quotes\"",
    "back\\slash",
    "multi\nline",
    "tabs\tand unicode ✓",
    "",
];

fn hist_stat(name: &str, values: &[f64]) -> HistogramStat {
    // Rebuild the snapshot form by hand: (le, count) pairs on the same
    // log2 grid the registry uses (bucket i covers [2^(i-32), 2^(i-31))).
    let mut counts = std::collections::BTreeMap::new();
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for &v in values {
        let idx = (v.log2().floor() as i32 + 32).clamp(0, 63);
        *counts.entry(idx).or_insert(0u64) += 1;
        min = min.min(v);
        max = max.max(v);
        sum += v;
    }
    HistogramStat {
        name: name.to_string(),
        count: values.len() as u64,
        sum,
        min: if values.is_empty() { 0.0 } else { min },
        max: if values.is_empty() { 0.0 } else { max },
        buckets: counts
            .into_iter()
            .map(|(i, c)| (2f64.powi(i - 31), c))
            .collect(),
        exemplars: Vec::new(),
    }
}

fn snapshot_from(counters: &[(usize, u64)], hist: &[f64], span_idx: usize) -> MetricsSnapshot {
    MetricsSnapshot {
        spans: vec![SpanStat {
            path: NASTY[span_idx % NASTY.len()].to_string(),
            count: 1 + span_idx as u64,
            total_ns: 1_000_000,
            self_ns: 900_000,
            min_ns: 1_000,
            max_ns: 500_000,
        }],
        counters: counters
            .iter()
            .map(|&(i, v)| (format!("ctr.{}", NASTY[i % NASTY.len()]), v))
            .collect(),
        gauges: counters
            .iter()
            .map(|&(i, v)| (format!("lvl.{}", NASTY[i % NASTY.len()]), v as i64))
            .collect(),
        histograms: vec![hist_stat("serve.latency_ms", hist)],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Property: every metrics event line is standalone JSON — one line,
    /// parses on its own, and declares `ceps-metrics/v1` — whatever the
    /// snapshot contents, with or without a delta window.
    #[test]
    fn metrics_event_lines_parse_as_standalone_json(
        counters in proptest::collection::vec((0usize..6, 0u64..1_000_000), 0..5),
        hist in proptest::collection::vec(0.001f64..1e6, 0..40),
        growth in proptest::collection::vec(0.001f64..1e6, 1..10),
        span_idx in 0usize..6,
        seq in 0u64..1000,
    ) {
        let snap1 = snapshot_from(&counters, &hist, span_idx);
        let mut later = hist.clone();
        later.extend_from_slice(&growth);
        let grown: Vec<(usize, u64)> =
            counters.iter().map(|&(i, v)| (i, v + 7)).collect();
        let snap2 = snapshot_from(&grown, &later, span_idx);

        let mut window = WindowedMetrics::new(4);
        window.push_at(0.0, snap1.clone());
        window.push_at(2.0, snap2.clone());
        let delta = window.delta().expect("two snapshots give a delta");

        for line in [
            ceps_obs::metrics_event_json(&snap1, None, seq, 1_700_000_000_000, 250),
            ceps_obs::metrics_event_json(&snap2, Some(&delta), seq + 1, 1_700_000_000_250, 250),
        ] {
            prop_assert!(!line.contains('\n'), "event must be one line");
            let doc: serde_json::Value =
                serde_json::from_str(&line).expect("event line must parse standalone");
            prop_assert!(doc["schema"] == "ceps-metrics/v1");
            prop_assert!(doc["seq"].as_u64().is_some());
            prop_assert!(matches!(doc["counters"], serde_json::Value::Object(_)));
            prop_assert!(doc["histograms"].as_array().is_some());
        }
    }

    /// Property: every trace line is standalone JSON declaring
    /// `ceps-trace/v1`, with hostile error strings surviving the escape.
    #[test]
    fn trace_lines_parse_as_standalone_json(
        request_id in 0u64..10_000,
        mix in 0usize..100_000,
        latency_ms in 0.0f64..1e4,
        split in 0.0f64..1.0,
        err_idx in 0usize..7,
        kind in 0usize..2,
    ) {
        let scores = latency_ms * split;
        let combine = (latency_ms - scores) * 0.5;
        let error = (err_idx < NASTY.len()).then(|| NASTY[err_idx].to_string());
        // Half the requests carry a distributed-trace id; the line must
        // render it as fixed-width hex (u64 ids don't survive JSON f64).
        let trace_id = (mix % 2 == 0).then(|| 0x1000_0000_0000_0000u64 | mix as u64);
        let trace = RequestTrace {
            request_id,
            worker: mix % 8,
            queries: 1 + mix % 5,
            latency_ms,
            stages: StageTimes {
                scores_ms: scores,
                combine_ms: combine,
                extract_ms: (latency_ms - scores - combine).max(0.0),
            },
            queue_ms: latency_ms * (1.0 - split) * 0.25,
            cache_hits: mix as u64 % 10,
            cache_misses: (mix as u64 / 10) % 10,
            budget: 20,
            paths: mix % 40,
            error: error.clone(),
            trace_id,
        };
        let kind = if kind == 0 { SampleKind::Head } else { SampleKind::Tail };
        let line = trace_json(&trace, kind);
        prop_assert!(!line.contains('\n'), "trace must be one line");
        let doc: serde_json::Value =
            serde_json::from_str(&line).expect("trace line must parse standalone");
        prop_assert!(doc["schema"] == "ceps-trace/v1");
        prop_assert_eq!(doc["request_id"].as_u64(), Some(request_id));
        prop_assert!(doc["queue_ms"].as_f64().is_some_and(|q| q >= 0.0));
        prop_assert_eq!(
            doc["sampled"].as_str(),
            Some(if kind == SampleKind::Head { "head" } else { "tail" })
        );
        match &error {
            None => {
                prop_assert_eq!(doc["outcome"].as_str(), Some("ok"));
                prop_assert!(doc.get("error").is_none());
            }
            Some(e) => {
                prop_assert_eq!(doc["outcome"].as_str(), Some("error"));
                prop_assert_eq!(doc["error"].as_str(), Some(e.as_str()));
            }
        }
        match trace_id {
            None => prop_assert!(doc.get("trace_id").is_none()),
            Some(id) => {
                let hex = doc["trace_id"].as_str().expect("trace_id is a string");
                prop_assert_eq!(hex.len(), 16, "fixed-width hex");
                prop_assert_eq!(u64::from_str_radix(hex, 16).unwrap(), id);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Traced serving end-to-end.
// ---------------------------------------------------------------------------

#[test]
fn traced_serving_emits_a_line_per_request_with_consistent_stage_times() {
    let (data, repo) = workload();
    let cfg = CepsConfig::default().budget(8).threads(1);
    let engine = CepsEngine::new(&data.graph, cfg).unwrap();
    let service = CepsServiceBuilder::new()
        .cache_bytes(32 << 20)
        .build(engine);

    let dir = tmp_dir("traced_serve");
    let path = dir.join("traces.jsonl");
    let tracer = RequestTracer::to_file(&path, 1.0).unwrap();

    let stream: Vec<Vec<NodeId>> = (0..16)
        .map(|i| repo.sample(1 + (i as usize % 3), 500 + i))
        .collect();
    let outcome = service
        .serve_stream_traced(&stream, 2, Some(&tracer))
        .unwrap();
    assert_eq!(outcome.completed, stream.len());

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(
        lines.len(),
        stream.len(),
        "full head-sampling keeps every request"
    );

    let mut seen = vec![false; stream.len()];
    let (mut stage_total, mut latency_total) = (0.0, 0.0);
    for line in &lines {
        let doc: serde_json::Value = serde_json::from_str(line).unwrap();
        assert_eq!(doc["schema"], "ceps-trace/v1");
        assert_eq!(doc["outcome"], "ok");
        let id = doc["request_id"].as_u64().unwrap() as usize;
        assert!(!seen[id], "request {id} traced twice");
        seen[id] = true;
        let latency = doc["latency_ms"].as_f64().unwrap();
        let stages = doc["scores_ms"].as_f64().unwrap()
            + doc["combine_ms"].as_f64().unwrap()
            + doc["extract_ms"].as_f64().unwrap();
        assert!(
            stages <= latency * 1.001 + 1e-6,
            "stages {stages} exceed latency {latency}"
        );
        stage_total += stages;
        latency_total += latency;
    }
    assert!(seen.iter().all(|&s| s), "every request id must appear");
    // The three pipeline stages are where serving time goes: in aggregate
    // they must account for the measured latency to within 10%.
    assert!(
        stage_total >= 0.9 * latency_total,
        "stage times {stage_total:.3}ms only cover {:.0}% of latency {latency_total:.3}ms",
        100.0 * stage_total / latency_total
    );

    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Exporter end-to-end.
// ---------------------------------------------------------------------------

#[test]
fn exporter_final_prom_file_matches_the_final_registry_snapshot() {
    let _guard = obs_lock();
    let (data, repo) = workload();
    let cfg = CepsConfig::default().budget(6).threads(1);
    let engine = CepsEngine::new(&data.graph, cfg).unwrap();
    let service = CepsServiceBuilder::new()
        .cache_bytes(32 << 20)
        .build(engine);

    let dir = tmp_dir("exporter");
    let prom_path = dir.join("metrics.prom");
    let events_path = dir.join("metrics.jsonl");

    ceps_obs::install_recorder();
    ceps_obs::reset();
    let exporter = ceps_obs::MetricsExporter::start(
        ceps_obs::ExporterConfig::new(25)
            .prom(&prom_path)
            .events(&events_path),
    )
    .unwrap();

    let stream: Vec<Vec<NodeId>> = (0..10).map(|i| repo.sample(2, 900 + i)).collect();
    service.serve_stream(&stream, 2).unwrap();

    drop(exporter); // final flush: the .prom must now equal the registry
    let snap = ceps_obs::snapshot();
    ceps_obs::uninstall_recorder();

    let (_, samples) = parse_prom(&std::fs::read_to_string(&prom_path).unwrap());
    assert_eq!(
        sample_value(&samples, "ceps_serve_requests"),
        Some(snap.counter("serve.requests").unwrap() as f64),
    );
    let latency = snap
        .histograms
        .iter()
        .find(|h| h.name == "serve.latency_ms")
        .expect("latency histogram recorded");
    assert_eq!(
        sample_value(&samples, "ceps_serve_latency_ms_count"),
        Some(latency.count as f64),
    );
    assert_eq!(latency.count, stream.len() as u64);

    // With the recorder installed, serving mints a sampled root trace
    // context per request, so the exported buckets must carry at least
    // one exemplar pointing at a real (nonzero, 16-hex-digit) trace id.
    let exemplars: Vec<&(String, f64)> = samples
        .iter()
        .filter(|s| s.name == "ceps_serve_latency_ms_bucket")
        .filter_map(|s| s.exemplar.as_ref())
        .collect();
    assert!(
        !exemplars.is_empty(),
        "traced serving must leave bucket exemplars in the .prom file"
    );
    for (trace_id, value) in &exemplars {
        assert_eq!(trace_id.len(), 16, "exemplar ids are fixed-width hex");
        assert_ne!(
            u64::from_str_radix(trace_id, 16).expect("exemplar id parses as hex"),
            0,
            "exemplar must reference a real trace"
        );
        assert!(*value > 0.0, "exemplar records the observed latency");
    }

    let events = std::fs::read_to_string(&events_path).unwrap();
    assert!(!events.is_empty(), "exporter must append events");
    for line in events.lines() {
        let doc: serde_json::Value = serde_json::from_str(line).unwrap();
        assert_eq!(doc["schema"], "ceps-metrics/v1");
    }

    let _ = std::fs::remove_dir_all(&dir);
}
